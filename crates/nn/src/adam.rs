//! The Adam optimizer.

use crate::param::ParamTensor;
use serde::{Deserialize, Serialize};

/// Adam (Kingma & Ba, 2015) with bias correction.
///
/// One `Adam` instance drives a whole model: call
/// [`step`](Adam::step) with the model's parameter tensors *in the same
/// order every time*; first-call lengths fix the moment-buffer layout.
///
/// # Examples
///
/// ```
/// use mmwave_nn::{Adam, ParamTensor};
/// let mut p = ParamTensor::from_data(vec![1.0]);
/// p.grad = vec![10.0];
/// let mut adam = Adam::new(0.1);
/// adam.step(&mut [&mut p]);
/// assert!(p.data[0] < 1.0, "gradient descent moves against the gradient");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    t: u64,
    moments: Vec<(Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Creates an optimizer with standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Adam {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, moments: Vec::new() }
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update to each tensor using its accumulated gradient.
    /// Gradients are *not* zeroed — call
    /// [`ParamTensor::zero_grad`] before the next accumulation.
    ///
    /// # Panics
    ///
    /// Panics if the tensor count or any tensor length changes between
    /// calls.
    pub fn step(&mut self, tensors: &mut [&mut ParamTensor]) {
        if self.moments.is_empty() {
            self.moments = tensors
                .iter()
                .map(|t| (vec![0.0; t.len()], vec![0.0; t.len()]))
                .collect();
        }
        assert_eq!(self.moments.len(), tensors.len(), "tensor count changed");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (tensor, (m, v)) in tensors.iter_mut().zip(&mut self.moments) {
            assert_eq!(tensor.len(), m.len(), "tensor length changed");
            for i in 0..tensor.len() {
                let g = tensor.grad[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let m_hat = m[i] / b1t;
                let v_hat = v[i] / b2t;
                tensor.data[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    /// Resets step count and moments (e.g. between experiment repetitions).
    pub fn reset(&mut self) {
        self.t = 0;
        self.moments.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic() {
        // f(x) = (x - 3)^2, df = 2(x - 3).
        let mut p = ParamTensor::from_data(vec![0.0]);
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            p.zero_grad();
            p.grad[0] = 2.0 * (p.data[0] - 3.0);
            adam.step(&mut [&mut p]);
        }
        assert!((p.data[0] - 3.0).abs() < 0.05, "converged to {}", p.data[0]);
    }

    #[test]
    fn handles_multiple_tensors() {
        let mut a = ParamTensor::from_data(vec![1.0]);
        let mut b = ParamTensor::from_data(vec![-2.0, 4.0]);
        let mut adam = Adam::new(0.05);
        for _ in 0..800 {
            a.zero_grad();
            b.zero_grad();
            a.grad[0] = 2.0 * a.data[0];
            b.grad[0] = 2.0 * (b.data[0] + 1.0);
            b.grad[1] = 2.0 * (b.data[1] - 1.0);
            adam.step(&mut [&mut a, &mut b]);
        }
        assert!(a.data[0].abs() < 0.05);
        assert!((b.data[0] + 1.0).abs() < 0.05);
        assert!((b.data[1] - 1.0).abs() < 0.05);
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // With bias correction, the first step size is ~lr regardless of
        // gradient magnitude.
        for g in [0.001f32, 1.0, 1000.0] {
            let mut p = ParamTensor::from_data(vec![0.0]);
            p.grad = vec![g];
            let mut adam = Adam::new(0.01);
            adam.step(&mut [&mut p]);
            assert!((p.data[0].abs() - 0.01).abs() < 1e-4, "grad {g} moved {}", p.data[0]);
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut p = ParamTensor::from_data(vec![0.0]);
        p.grad = vec![1.0];
        let mut adam = Adam::new(0.01);
        adam.step(&mut [&mut p]);
        assert_eq!(adam.steps(), 1);
        adam.reset();
        assert_eq!(adam.steps(), 0);
    }

    #[test]
    #[should_panic(expected = "tensor count changed")]
    fn changing_tensor_count_panics() {
        let mut a = ParamTensor::zeros(1);
        let mut b = ParamTensor::zeros(1);
        let mut adam = Adam::new(0.01);
        adam.step(&mut [&mut a]);
        adam.step(&mut [&mut a, &mut b]);
    }
}
