//! 2D convolution with zero padding.

use crate::init::kaiming_uniform;
use crate::param::ParamTensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A 2D convolution over `C x H x W` inputs (channel-major, row-major
/// within a channel) with square kernels and symmetric zero padding.
/// Stride is 1; downsampling is done by [`crate::MaxPool2`].
///
/// # Examples
///
/// ```
/// use mmwave_nn::Conv2d;
/// use rand::SeedableRng;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let conv = Conv2d::new(1, 4, 3, 1, &mut rng);
/// let input = vec![0.0_f32; 16 * 16];
/// let out = conv.forward(&input, 16, 16);
/// assert_eq!(out.len(), 4 * 16 * 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    k: usize,
    pad: usize,
    weights: ParamTensor,
    bias: ParamTensor,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialized kernels.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the kernel is even-sized.
    pub fn new<R: Rng + ?Sized>(
        in_c: usize,
        out_c: usize,
        k: usize,
        pad: usize,
        rng: &mut R,
    ) -> Conv2d {
        assert!(in_c > 0 && out_c > 0 && k > 0, "dimensions must be nonzero");
        assert!(k % 2 == 1, "only odd kernel sizes are supported");
        let fan_in = in_c * k * k;
        Conv2d {
            in_c,
            out_c,
            k,
            pad,
            weights: ParamTensor::from_data(kaiming_uniform(out_c * in_c * k * k, fan_in, rng)),
            bias: ParamTensor::zeros(out_c),
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_c
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Output spatial size for an `h x w` input (stride 1).
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h + 2 * self.pad + 1 - self.k, w + 2 * self.pad + 1 - self.k)
    }

    #[inline]
    fn weight_at(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> f32 {
        self.weights.data[((oc * self.in_c + ic) * self.k + ky) * self.k + kx]
    }

    /// Copies channel `ic` of `input` into a zero-padded `(h+2p) x (w+2p)`
    /// buffer so the convolution loops run branch-free (and vectorize).
    fn pad_channel(&self, input: &[f32], ic: usize, h: usize, w: usize, buf: &mut [f32]) {
        let pw = w + 2 * self.pad;
        buf.fill(0.0);
        let chan = &input[ic * h * w..(ic + 1) * h * w];
        for y in 0..h {
            let dst = (y + self.pad) * pw + self.pad;
            buf[dst..dst + w].copy_from_slice(&chan[y * w..(y + 1) * w]);
        }
    }

    /// Forward pass over a `C x H x W` input.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_c * h * w`.
    pub fn forward(&self, input: &[f32], h: usize, w: usize) -> Vec<f32> {
        assert_eq!(input.len(), self.in_c * h * w, "conv input size mismatch");
        let (oh, ow) = self.output_hw(h, w);
        let pw = w + 2 * self.pad;
        let mut padded = vec![0.0f32; (h + 2 * self.pad) * pw];
        let mut out = vec![0.0; self.out_c * oh * ow];
        // Shifted-accumulate formulation: for each kernel tap, add a
        // weighted, shifted image row to the output row. The inner loop is
        // a contiguous FMA over `ow` elements, which the compiler
        // vectorizes.
        for ic in 0..self.in_c {
            self.pad_channel(input, ic, h, w, &mut padded);
            for oc in 0..self.out_c {
                let out_chan = &mut out[oc * oh * ow..(oc + 1) * oh * ow];
                for ky in 0..self.k {
                    for kx in 0..self.k {
                        let wgt = self.weight_at(oc, ic, ky, kx);
                        if wgt == 0.0 {
                            continue;
                        }
                        for oy in 0..oh {
                            let src = (oy + ky) * pw + kx;
                            let in_row = &padded[src..src + ow];
                            let out_row = &mut out_chan[oy * ow..(oy + 1) * ow];
                            for (o, &x) in out_row.iter_mut().zip(in_row) {
                                *o += wgt * x;
                            }
                        }
                    }
                }
            }
        }
        // Bias.
        for oc in 0..self.out_c {
            let b = self.bias.data[oc];
            if b != 0.0 {
                for o in &mut out[oc * oh * ow..(oc + 1) * oh * ow] {
                    *o += b;
                }
            }
        }
        out
    }

    /// Backward pass: accumulates kernel/bias gradients and returns the
    /// input gradient. `input` must match the corresponding `forward` call.
    ///
    /// # Panics
    ///
    /// Panics on size mismatches.
    pub fn backward(&mut self, input: &[f32], h: usize, w: usize, dout: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.in_c * h * w, "conv input size mismatch");
        let (oh, ow) = self.output_hw(h, w);
        assert_eq!(dout.len(), self.out_c * oh * ow, "conv output-grad size mismatch");
        let pw = w + 2 * self.pad;
        let ph = h + 2 * self.pad;
        let mut padded = vec![0.0f32; ph * pw];
        // Accumulate input gradients into a padded buffer, then crop — this
        // keeps the inner loops branch-free, like the forward pass.
        let mut dpadded = vec![0.0f32; ph * pw];
        let mut dinput = vec![0.0; input.len()];
        // Bias gradients: row sums of dout.
        for oc in 0..self.out_c {
            self.bias.grad[oc] += dout[oc * oh * ow..(oc + 1) * oh * ow].iter().sum::<f32>();
        }
        for ic in 0..self.in_c {
            self.pad_channel(input, ic, h, w, &mut padded);
            dpadded.fill(0.0);
            for oc in 0..self.out_c {
                let dout_chan = &dout[oc * oh * ow..(oc + 1) * oh * ow];
                for ky in 0..self.k {
                    for kx in 0..self.k {
                        let widx = ((oc * self.in_c + ic) * self.k + ky) * self.k + kx;
                        let wgt = self.weights.data[widx];
                        let mut wgrad = 0.0f32;
                        for oy in 0..oh {
                            let src = (oy + ky) * pw + kx;
                            let g_row = &dout_chan[oy * ow..(oy + 1) * ow];
                            // dW[tap] += <dout row, shifted input row>.
                            let in_row = &padded[src..src + ow];
                            let mut acc = 0.0f32;
                            for (g, x) in g_row.iter().zip(in_row) {
                                acc += g * x;
                            }
                            wgrad += acc;
                            // dX[shifted] += w[tap] * dout row.
                            let dx_row = &mut dpadded[src..src + ow];
                            for (dx, g) in dx_row.iter_mut().zip(g_row) {
                                *dx += wgt * g;
                            }
                        }
                        self.weights.grad[widx] += wgrad;
                    }
                }
            }
            // Crop the padded gradient back to the channel.
            let dchan = &mut dinput[ic * h * w..(ic + 1) * h * w];
            for y in 0..h {
                let src = (y + self.pad) * pw + self.pad;
                for (d, &v) in dchan[y * w..(y + 1) * w].iter_mut().zip(&dpadded[src..src + w]) {
                    *d += v;
                }
            }
        }
        dinput
    }

    /// The layer's parameter tensors (weights, then bias).
    pub fn param_tensors(&mut self) -> Vec<&mut ParamTensor> {
        vec![&mut self.weights, &mut self.bias]
    }

    /// Zeroes all gradient accumulators.
    pub fn zero_grads(&mut self) {
        self.weights.zero_grad();
        self.bias.zero_grad();
    }

    /// Immutable weight access.
    pub fn weights(&self) -> &ParamTensor {
        &self.weights
    }

    /// Mutable weight access.
    pub fn weights_mut(&mut self) -> &mut ParamTensor {
        &mut self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identity_kernel_preserves_input() {
        let mut conv = Conv2d::new(1, 1, 3, 1, &mut ChaCha8Rng::seed_from_u64(0));
        conv.weights_mut().data = vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        let input: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let out = conv.forward(&input, 4, 4);
        assert_eq!(out, input);
    }

    #[test]
    fn shift_kernel_shifts_image() {
        let mut conv = Conv2d::new(1, 1, 3, 1, &mut ChaCha8Rng::seed_from_u64(0));
        // Kernel that picks the left neighbor.
        conv.weights_mut().data = vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let input = vec![0.0, 1.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0];
        let out = conv.forward(&input, 3, 3);
        // Pixel values move one to the right.
        assert_eq!(out[2], 1.0);
        assert_eq!(out[5], 0.0);
    }

    #[test]
    fn output_shape_without_padding_shrinks() {
        let conv = Conv2d::new(1, 2, 3, 0, &mut ChaCha8Rng::seed_from_u64(0));
        assert_eq!(conv.output_hw(8, 8), (6, 6));
        let out = conv.forward(&vec![0.0; 64], 8, 8);
        assert_eq!(out.len(), 2 * 36);
    }

    #[test]
    fn gradient_check_small_conv() {
        let mut conv = Conv2d::new(2, 2, 3, 1, &mut ChaCha8Rng::seed_from_u64(5));
        let (h, w) = (4, 4);
        let input: Vec<f32> = (0..2 * h * w).map(|i| ((i * 7 % 13) as f32 - 6.0) / 6.0).collect();
        let (oh, ow) = conv.output_hw(h, w);
        let dout = vec![1.0; 2 * oh * ow];
        conv.zero_grads();
        let dinput = conv.backward(&input, h, w, &dout);
        let loss = |c: &Conv2d, x: &[f32]| c.forward(x, h, w).iter().sum::<f32>();
        let eps = 1e-2;
        // Spot-check a spread of weight gradients.
        for k in (0..conv.weights().len()).step_by(5) {
            let mut cp = conv.clone();
            cp.weights_mut().data[k] += eps;
            let mut cm = conv.clone();
            cm.weights_mut().data[k] -= eps;
            let fd = (loss(&cp, &input) - loss(&cm, &input)) / (2.0 * eps);
            let an = conv.weights().grad[k];
            assert!((fd - an).abs() < 0.05 * an.abs().max(1.0), "w{k}: {fd} vs {an}");
        }
        // Spot-check input gradients.
        for i in (0..input.len()).step_by(7) {
            let mut xp = input.clone();
            xp[i] += eps;
            let mut xm = input.clone();
            xm[i] -= eps;
            let fd = (loss(&conv, &xp) - loss(&conv, &xm)) / (2.0 * eps);
            assert!((fd - dinput[i]).abs() < 0.05 * dinput[i].abs().max(1.0), "x{i}");
        }
    }

    #[test]
    fn bias_raises_all_outputs() {
        let mut conv = Conv2d::new(1, 1, 3, 1, &mut ChaCha8Rng::seed_from_u64(0));
        conv.weights_mut().data = vec![0.0; 9];
        conv.bias.data[0] = 2.5;
        let out = conv.forward(&vec![0.0; 25], 5, 5);
        assert!(out.iter().all(|&v| (v - 2.5).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "only odd kernel")]
    fn even_kernel_panics() {
        Conv2d::new(1, 1, 4, 1, &mut ChaCha8Rng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn wrong_input_size_panics() {
        let conv = Conv2d::new(1, 1, 3, 1, &mut ChaCha8Rng::seed_from_u64(0));
        conv.forward(&[0.0; 10], 4, 4);
    }
}
