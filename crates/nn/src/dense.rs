//! Fully-connected layer.

use crate::init::xavier_uniform;
use crate::param::ParamTensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense (fully-connected) layer: `y = W x + b`.
///
/// Weights are stored row-major, one row per output.
///
/// # Examples
///
/// ```
/// use mmwave_nn::Dense;
/// use rand::SeedableRng;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let layer = Dense::new(3, 2, &mut rng);
/// let y = layer.forward(&[1.0, 0.0, -1.0]);
/// assert_eq!(y.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    n_in: usize,
    n_out: usize,
    weights: ParamTensor,
    bias: ParamTensor,
}

impl Dense {
    /// Creates a layer with Xavier-initialized weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(n_in: usize, n_out: usize, rng: &mut R) -> Dense {
        assert!(n_in > 0 && n_out > 0, "layer dimensions must be nonzero");
        Dense {
            n_in,
            n_out,
            weights: ParamTensor::from_data(xavier_uniform(n_in * n_out, n_in, n_out, rng)),
            bias: ParamTensor::zeros(n_out),
        }
    }

    /// Input dimension.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output dimension.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n_in`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.n_in, "dense input length mismatch");
        let mut y = self.bias.data.clone();
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.weights.data[o * self.n_in..(o + 1) * self.n_in];
            *yo += row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f32>();
        }
        y
    }

    /// Backward pass: accumulates weight/bias gradients and returns `dx`.
    ///
    /// `x` must be the same input given to the matching `forward` call.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn backward(&mut self, x: &[f32], dy: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.n_in, "dense input length mismatch");
        assert_eq!(dy.len(), self.n_out, "dense output-grad length mismatch");
        let mut dx = vec![0.0; self.n_in];
        for (o, &g) in dy.iter().enumerate() {
            self.bias.grad[o] += g;
            let row_w = &self.weights.data[o * self.n_in..(o + 1) * self.n_in];
            let row_g = &mut self.weights.grad[o * self.n_in..(o + 1) * self.n_in];
            for i in 0..self.n_in {
                row_g[i] += g * x[i];
                dx[i] += g * row_w[i];
            }
        }
        dx
    }

    /// The layer's parameter tensors (weights, then bias), for optimizers.
    pub fn param_tensors(&mut self) -> Vec<&mut ParamTensor> {
        vec![&mut self.weights, &mut self.bias]
    }

    /// Zeroes all gradient accumulators.
    pub fn zero_grads(&mut self) {
        self.weights.zero_grad();
        self.bias.zero_grad();
    }

    /// Immutable weight access (for inspection in tests/analyses).
    pub fn weights(&self) -> &ParamTensor {
        &self.weights
    }

    /// Mutable weight access.
    pub fn weights_mut(&mut self) -> &mut ParamTensor {
        &mut self.weights
    }

    /// Immutable bias access.
    pub fn bias(&self) -> &ParamTensor {
        &self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn layer() -> Dense {
        Dense::new(4, 3, &mut ChaCha8Rng::seed_from_u64(3))
    }

    #[test]
    fn forward_matches_manual_computation() {
        let mut l = Dense::new(2, 1, &mut ChaCha8Rng::seed_from_u64(0));
        l.weights_mut().data = vec![2.0, -1.0];
        let y = l.forward(&[3.0, 4.0]);
        assert!((y[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_check_weights_and_input() {
        let mut l = layer();
        let x = [0.5, -1.0, 2.0, 0.25];
        // Loss = sum of outputs (so dy = ones).
        let dy = [1.0, 1.0, 1.0];
        l.zero_grads();
        let dx = l.backward(&x, &dy);
        let eps = 1e-3;
        // Weight gradients.
        for k in 0..l.weights().len() {
            let mut lp = l.clone();
            lp.weights_mut().data[k] += eps;
            let mut lm = l.clone();
            lm.weights_mut().data[k] -= eps;
            let fd = (lp.forward(&x).iter().sum::<f32>() - lm.forward(&x).iter().sum::<f32>())
                / (2.0 * eps);
            assert!(
                (fd - l.weights().grad[k]).abs() < 1e-2,
                "weight {k}: fd {fd} vs analytic {}",
                l.weights().grad[k]
            );
        }
        // Input gradients.
        for i in 0..x.len() {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let fd = (l.forward(&xp).iter().sum::<f32>() - l.forward(&xm).iter().sum::<f32>())
                / (2.0 * eps);
            assert!((fd - dx[i]).abs() < 1e-2, "input {i}: fd {fd} vs {}", dx[i]);
        }
    }

    #[test]
    fn bias_gradient_accumulates_dy() {
        let mut l = layer();
        l.zero_grads();
        l.backward(&[0.0; 4], &[1.0, 2.0, 3.0]);
        l.backward(&[0.0; 4], &[1.0, 0.0, 0.0]);
        assert_eq!(l.bias().grad, vec![2.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn wrong_input_length_panics() {
        layer().forward(&[1.0, 2.0]);
    }
}
