//! A single-layer LSTM with full backpropagation through time.

use crate::init::xavier_uniform;
use crate::param::ParamTensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Long short-term memory layer.
///
/// The combined weight matrix has shape `4H x (I + H)` (gate order: input,
/// forget, cell, output) and the forget-gate bias is initialized to 1, the
/// standard recipe for stable gradients over 32-step sequences.
///
/// # Examples
///
/// ```
/// use mmwave_nn::Lstm;
/// use rand::SeedableRng;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let lstm = Lstm::new(8, 16, &mut rng);
/// let inputs = vec![vec![0.1_f32; 8]; 5];
/// let cache = lstm.forward(&inputs);
/// assert_eq!(cache.hidden_states().len(), 5);
/// assert_eq!(cache.last_hidden().len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lstm {
    n_in: usize,
    n_hidden: usize,
    /// `4H x (I + H)` row-major: row `r` weights gate `r / H` unit `r % H`.
    weights: ParamTensor,
    bias: ParamTensor,
}

/// Per-step quantities needed for backpropagation.
#[derive(Debug, Clone, PartialEq)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    gates: Vec<f32>, // activated [i, f, g, o], length 4H
    c: Vec<f32>,
    tanh_c: Vec<f32>,
}

/// Forward-pass cache: hidden states plus everything `backward` needs.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmCache {
    steps: Vec<StepCache>,
    hidden: Vec<Vec<f32>>,
}

impl LstmCache {
    /// Hidden state after each step.
    pub fn hidden_states(&self) -> &[Vec<f32>] {
        &self.hidden
    }

    /// Hidden state after the final step.
    ///
    /// # Panics
    ///
    /// Panics if the sequence was empty.
    pub fn last_hidden(&self) -> &[f32] {
        self.hidden.last().expect("empty LSTM sequence")
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Lstm {
    /// Creates an LSTM.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    pub fn new<R: Rng + ?Sized>(n_in: usize, n_hidden: usize, rng: &mut R) -> Lstm {
        assert!(n_in > 0 && n_hidden > 0, "dimensions must be nonzero");
        let cols = n_in + n_hidden;
        let weights = ParamTensor::from_data(xavier_uniform(
            4 * n_hidden * cols,
            cols,
            n_hidden,
            rng,
        ));
        let mut bias = ParamTensor::zeros(4 * n_hidden);
        // Forget-gate bias = 1.
        for b in &mut bias.data[n_hidden..2 * n_hidden] {
            *b = 1.0;
        }
        Lstm { n_in, n_hidden, weights, bias }
    }

    /// Input dimension.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Hidden dimension.
    pub fn n_hidden(&self) -> usize {
        self.n_hidden
    }

    /// Runs the sequence and returns the cache.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any step has the wrong length.
    pub fn forward(&self, inputs: &[Vec<f32>]) -> LstmCache {
        assert!(!inputs.is_empty(), "LSTM needs at least one step");
        let hdim = self.n_hidden;
        let cols = self.n_in + hdim;
        let mut h = vec![0.0f32; hdim];
        let mut c = vec![0.0f32; hdim];
        let mut steps = Vec::with_capacity(inputs.len());
        let mut hidden = Vec::with_capacity(inputs.len());
        for x in inputs {
            assert_eq!(x.len(), self.n_in, "LSTM input length mismatch");
            let h_prev = h.clone();
            let c_prev = c.clone();
            // z = W [x; h_prev] + b.
            let mut gates = self.bias.data.clone();
            for (r, g) in gates.iter_mut().enumerate() {
                let row = &self.weights.data[r * cols..(r + 1) * cols];
                let mut acc = 0.0;
                for (i, &xi) in x.iter().enumerate() {
                    acc += row[i] * xi;
                }
                for (j, &hj) in h_prev.iter().enumerate() {
                    acc += row[self.n_in + j] * hj;
                }
                *g += acc;
            }
            // Activate gates in place: [i, f, g, o].
            for u in 0..hdim {
                gates[u] = sigmoid(gates[u]);
                gates[hdim + u] = sigmoid(gates[hdim + u]);
                gates[2 * hdim + u] = gates[2 * hdim + u].tanh();
                gates[3 * hdim + u] = sigmoid(gates[3 * hdim + u]);
            }
            let mut tanh_c = vec![0.0f32; hdim];
            for u in 0..hdim {
                c[u] = gates[hdim + u] * c_prev[u] + gates[u] * gates[2 * hdim + u];
                tanh_c[u] = c[u].tanh();
                h[u] = gates[3 * hdim + u] * tanh_c[u];
            }
            hidden.push(h.clone());
            steps.push(StepCache {
                x: x.clone(),
                h_prev,
                c_prev,
                gates: gates.clone(),
                c: c.clone(),
                tanh_c,
            });
        }
        LstmCache { steps, hidden }
    }

    /// Backpropagation through time. `dh_external[t]` is the gradient of
    /// the loss with respect to the hidden state at step `t` (zero vectors
    /// for steps without a direct loss contribution). Accumulates parameter
    /// gradients and returns the per-step input gradients.
    ///
    /// # Panics
    ///
    /// Panics if `dh_external` does not match the cached sequence shape.
    pub fn backward(&mut self, cache: &LstmCache, dh_external: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(dh_external.len(), cache.steps.len(), "BPTT length mismatch");
        let hdim = self.n_hidden;
        let cols = self.n_in + hdim;
        let mut dh_next = vec![0.0f32; hdim];
        let mut dc_next = vec![0.0f32; hdim];
        let mut dx_all = vec![vec![0.0f32; self.n_in]; cache.steps.len()];
        for t in (0..cache.steps.len()).rev() {
            let s = &cache.steps[t];
            assert_eq!(dh_external[t].len(), hdim, "dh length mismatch at step {t}");
            let mut dh = dh_next.clone();
            for (a, b) in dh.iter_mut().zip(&dh_external[t]) {
                *a += *b;
            }
            // Through h = o * tanh(c).
            let mut dz = vec![0.0f32; 4 * hdim];
            let mut dc = dc_next.clone();
            for u in 0..hdim {
                let (i, f, g, o) = (
                    s.gates[u],
                    s.gates[hdim + u],
                    s.gates[2 * hdim + u],
                    s.gates[3 * hdim + u],
                );
                let do_ = dh[u] * s.tanh_c[u];
                dc[u] += dh[u] * o * (1.0 - s.tanh_c[u] * s.tanh_c[u]);
                let di = dc[u] * g;
                let dg = dc[u] * i;
                let df = dc[u] * s.c_prev[u];
                dz[u] = di * i * (1.0 - i);
                dz[hdim + u] = df * f * (1.0 - f);
                dz[2 * hdim + u] = dg * (1.0 - g * g);
                dz[3 * hdim + u] = do_ * o * (1.0 - o);
                dc_next[u] = dc[u] * f;
            }
            // Parameter and upstream gradients.
            let mut dh_prev = vec![0.0f32; hdim];
            for (r, &dzr) in dz.iter().enumerate() {
                if dzr == 0.0 {
                    continue;
                }
                self.bias.grad[r] += dzr;
                let row_w = &self.weights.data[r * cols..(r + 1) * cols];
                let row_g = &mut self.weights.grad[r * cols..(r + 1) * cols];
                for (i, &xi) in s.x.iter().enumerate() {
                    row_g[i] += dzr * xi;
                    dx_all[t][i] += dzr * row_w[i];
                }
                for (j, &hj) in s.h_prev.iter().enumerate() {
                    row_g[self.n_in + j] += dzr * hj;
                    dh_prev[j] += dzr * row_w[self.n_in + j];
                }
            }
            dh_next = dh_prev;
        }
        dx_all
    }

    /// The layer's parameter tensors (weights, then bias).
    pub fn param_tensors(&mut self) -> Vec<&mut ParamTensor> {
        vec![&mut self.weights, &mut self.bias]
    }

    /// Zeroes all gradient accumulators.
    pub fn zero_grads(&mut self) {
        self.weights.zero_grad();
        self.bias.zero_grad();
    }

    /// Immutable weight access.
    pub fn weights(&self) -> &ParamTensor {
        &self.weights
    }

    /// Mutable weight access.
    pub fn weights_mut(&mut self) -> &mut ParamTensor {
        &mut self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn lstm(n_in: usize, n_h: usize, seed: u64) -> Lstm {
        Lstm::new(n_in, n_h, &mut ChaCha8Rng::seed_from_u64(seed))
    }

    fn seq(n_steps: usize, n_in: usize) -> Vec<Vec<f32>> {
        (0..n_steps)
            .map(|t| {
                (0..n_in)
                    .map(|i| (((t * n_in + i) as f32) * 0.37).sin() * 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn hidden_states_are_bounded() {
        let l = lstm(4, 8, 0);
        let cache = l.forward(&seq(20, 4));
        for h in cache.hidden_states() {
            assert!(h.iter().all(|v| v.abs() <= 1.0), "h = o * tanh(c) is in (-1, 1)");
        }
    }

    #[test]
    fn zero_input_zero_state_is_stable() {
        let l = lstm(4, 8, 1);
        let cache = l.forward(&vec![vec![0.0; 4]; 3]);
        // With zero input, the state stays small (biases only).
        for h in cache.hidden_states() {
            assert!(h.iter().all(|v| v.abs() < 0.9));
        }
    }

    #[test]
    fn memory_earlier_inputs_affect_later_states() {
        let l = lstm(2, 6, 2);
        let mut a = seq(10, 2);
        let b = a.clone();
        a[0][0] += 1.0; // perturb only the first step
        let ha = l.forward(&a);
        let hb = l.forward(&b);
        let d: f32 = ha
            .last_hidden()
            .iter()
            .zip(hb.last_hidden())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(d > 1e-4, "the LSTM should remember the first step: {d}");
    }

    #[test]
    fn gradient_check_loss_on_last_hidden() {
        let mut l = lstm(3, 4, 3);
        let inputs = seq(5, 3);
        let cache = l.forward(&inputs);
        // Loss = sum of last hidden.
        let mut dh = vec![vec![0.0; 4]; 5];
        dh[4] = vec![1.0; 4];
        l.zero_grads();
        let dx = l.backward(&cache, &dh);
        let loss = |m: &Lstm, xs: &[Vec<f32>]| m.forward(xs).last_hidden().iter().sum::<f32>();
        let eps = 1e-2;
        // Weights.
        for k in (0..l.weights().len()).step_by(11) {
            let mut lp = l.clone();
            lp.weights_mut().data[k] += eps;
            let mut lm = l.clone();
            lm.weights_mut().data[k] -= eps;
            let fd = (loss(&lp, &inputs) - loss(&lm, &inputs)) / (2.0 * eps);
            let an = l.weights().grad[k];
            assert!(
                (fd - an).abs() < 2e-2 * an.abs().max(1.0),
                "weight {k}: fd {fd} vs analytic {an}"
            );
        }
        // Inputs at two different steps (checks BPTT depth).
        for (t, i) in [(0usize, 1usize), (4, 2)] {
            let mut xp = inputs.clone();
            xp[t][i] += eps;
            let mut xm = inputs.clone();
            xm[t][i] -= eps;
            let fd = (loss(&l, &xp) - loss(&l, &xm)) / (2.0 * eps);
            let an = dx[t][i];
            assert!((fd - an).abs() < 2e-2 * an.abs().max(1.0), "x[{t}][{i}]: {fd} vs {an}");
        }
    }

    #[test]
    fn gradient_check_per_step_loss() {
        // Loss spread over all steps exercises the recurrent accumulation.
        let mut l = lstm(2, 3, 4);
        let inputs = seq(4, 2);
        let cache = l.forward(&inputs);
        let dh = vec![vec![1.0; 3]; 4];
        l.zero_grads();
        l.backward(&cache, &dh);
        let loss = |m: &Lstm, xs: &[Vec<f32>]| {
            m.forward(xs)
                .hidden_states()
                .iter()
                .map(|h| h.iter().sum::<f32>())
                .sum::<f32>()
        };
        let eps = 1e-2;
        for k in (0..l.weights().len()).step_by(7) {
            let mut lp = l.clone();
            lp.weights_mut().data[k] += eps;
            let mut lm = l.clone();
            lm.weights_mut().data[k] -= eps;
            let fd = (loss(&lp, &inputs) - loss(&lm, &inputs)) / (2.0 * eps);
            let an = l.weights().grad[k];
            assert!((fd - an).abs() < 3e-2 * an.abs().max(1.0), "weight {k}: {fd} vs {an}");
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let l = lstm(2, 4, 5);
        assert!(l.bias.data[4..8].iter().all(|&b| b == 1.0));
        assert!(l.bias.data[0..4].iter().all(|&b| b == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_sequence_panics() {
        lstm(2, 2, 0).forward(&[]);
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn wrong_input_size_panics() {
        lstm(3, 2, 0).forward(&[vec![0.0; 2]]);
    }
}
