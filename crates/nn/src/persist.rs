//! Model persistence: JSON save/load for anything serde-serializable.
//!
//! Every layer in this crate (and the assembled `CnnLstm` in `mmwave-har`)
//! derives `Serialize`/`Deserialize`, so a trained model round-trips
//! through these helpers — e.g. train a backdoored model once, persist it,
//! and reload it for the robustness sweeps.
//!
//! Persistence is backed by `mmwave-store`: saves are atomic (temp file +
//! rename) inside a checksummed envelope, and loads verify the checksum,
//! quarantining torn or corrupt files to `<path>.quarantine-<n>`. Bare
//! JSON written by earlier releases still loads. All errors name the
//! offending path, so a failed model load inside a 200-point campaign is
//! attributable from the message alone.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io;
use std::path::Path;

/// Serializes `value` as JSON to `path` atomically, creating parent
/// directories, with a checksummed envelope for load-time verification.
///
/// # Errors
///
/// Returns an error (naming `path`) if directory creation, serialization,
/// or the write fails.
pub fn save_json<T: Serialize, P: AsRef<Path>>(value: &T, path: P) -> io::Result<()> {
    mmwave_store::save_json_atomic(path.as_ref(), value).map_err(io::Error::from)
}

/// Deserializes a JSON file written by [`save_json`] (or bare JSON from a
/// pre-envelope release), verifying the checksum when present.
///
/// # Errors
///
/// Returns an error naming the offending path if the file is missing,
/// torn, corrupt, or does not match `T`. Torn and corrupt files are moved
/// to `<path>.quarantine-<n>` first so the caller can regenerate them.
pub fn load_json<T: DeserializeOwned, P: AsRef<Path>>(path: P) -> io::Result<T> {
    mmwave_store::load_json(path.as_ref())
        .map(|loaded| loaded.value)
        .map_err(io::Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Lstm};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mmwave_nn_persist_{name}_{}.json", std::process::id()))
    }

    #[test]
    fn dense_round_trips() {
        let layer = Dense::new(4, 3, &mut ChaCha8Rng::seed_from_u64(1));
        let path = tmp("dense");
        save_json(&layer, &path).unwrap();
        let restored: Dense = load_json(&path).unwrap();
        assert_eq!(layer, restored);
        let x = [0.1, -0.5, 2.0, 0.0];
        assert_eq!(layer.forward(&x), restored.forward(&x));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn lstm_round_trips() {
        let lstm = Lstm::new(3, 5, &mut ChaCha8Rng::seed_from_u64(2));
        let path = tmp("lstm");
        save_json(&lstm, &path).unwrap();
        let restored: Lstm = load_json(&path).unwrap();
        assert_eq!(lstm, restored);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn legacy_bare_json_still_loads() {
        let layer = Dense::new(2, 2, &mut ChaCha8Rng::seed_from_u64(3));
        let path = tmp("legacy");
        std::fs::write(&path, serde_json::to_string(&layer).unwrap()).unwrap();
        let restored: Dense = load_json(&path).unwrap();
        assert_eq!(layer, restored);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_of_garbage_fails_with_path_in_error() {
        let path = tmp("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        let out: io::Result<Dense> = load_json(&path);
        let err = out.unwrap_err();
        assert!(
            err.to_string().contains("garbage"),
            "error must name the path: {err}"
        );
        // The corrupt file was quarantined, not left in place.
        assert!(!path.exists());
        for entry in std::fs::read_dir(std::env::temp_dir()).unwrap().flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(&format!(
                "mmwave_nn_persist_garbage_{}.json.quarantine-",
                std::process::id()
            )) {
                std::fs::remove_file(entry.path()).ok();
            }
        }
    }

    #[test]
    fn load_of_missing_file_fails_with_path_in_error() {
        let out: io::Result<Dense> = load_json("/nonexistent/definitely/missing.json");
        let err = out.unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        assert!(err.to_string().contains("missing.json"), "{err}");
    }
}
