//! Model persistence: JSON save/load for anything serde-serializable.
//!
//! Every layer in this crate (and the assembled `CnnLstm` in `mmwave-har`)
//! derives `Serialize`/`Deserialize`, so a trained model round-trips
//! through these helpers — e.g. train a backdoored model once, persist it,
//! and reload it for the robustness sweeps.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fs;
use std::io;
use std::path::Path;

/// Serializes `value` as JSON to `path`, creating parent directories.
///
/// # Errors
///
/// Returns an error if directory creation, serialization, or the write
/// fails.
pub fn save_json<T: Serialize, P: AsRef<Path>>(value: &T, path: P) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let json = serde_json::to_string(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, json)
}

/// Deserializes a JSON file written by [`save_json`].
///
/// # Errors
///
/// Returns an error if the file cannot be read or parsed.
pub fn load_json<T: DeserializeOwned, P: AsRef<Path>>(path: P) -> io::Result<T> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Lstm};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mmwave_nn_persist_{name}_{}.json", std::process::id()))
    }

    #[test]
    fn dense_round_trips() {
        let layer = Dense::new(4, 3, &mut ChaCha8Rng::seed_from_u64(1));
        let path = tmp("dense");
        save_json(&layer, &path).unwrap();
        let restored: Dense = load_json(&path).unwrap();
        assert_eq!(layer, restored);
        let x = [0.1, -0.5, 2.0, 0.0];
        assert_eq!(layer.forward(&x), restored.forward(&x));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn lstm_round_trips() {
        let lstm = Lstm::new(3, 5, &mut ChaCha8Rng::seed_from_u64(2));
        let path = tmp("lstm");
        save_json(&lstm, &path).unwrap();
        let restored: Lstm = load_json(&path).unwrap();
        assert_eq!(lstm, restored);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_of_garbage_fails_cleanly() {
        let path = tmp("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        let out: io::Result<Dense> = load_json(&path);
        assert!(out.is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_of_missing_file_fails_cleanly() {
        let out: io::Result<Dense> = load_json("/nonexistent/definitely/missing.json");
        assert!(out.is_err());
    }
}
