//! Minimal neural-network substrate with hand-written backpropagation.
//!
//! The HAR prototype's classifier is a hybrid CNN-LSTM (Section II-A): a
//! small CNN extracts spatial features from each DRAI heatmap frame, an
//! LSTM integrates the 32-frame feature series, and a fully-connected layer
//! classifies. The paper trains it with PyTorch on two RTX 4090s; this
//! crate provides the same layer vocabulary in pure Rust, sized so a full
//! backdoor-training experiment fits in seconds on one CPU core:
//!
//! * [`Conv2d`] — 2D convolution with zero padding;
//! * [`MaxPool2`] — 2x2 max pooling with argmax caching;
//! * [`Dense`] — fully-connected layer;
//! * [`relu`]/[`relu_backward`] — activation;
//! * [`Lstm`] — a single-layer LSTM with full backpropagation through time;
//! * [`softmax_cross_entropy`] — loss and logits gradient;
//! * [`Adam`] — the Adam optimizer;
//! * [`ParamTensor`] — a parameter buffer paired with its gradient.
//!
//! Every layer exposes `forward` returning whatever caches its `backward`
//! needs, so training loops stay explicit and allocation-light. Gradients
//! are validated against finite differences in each module's tests.
//!
//! # Examples
//!
//! ```
//! use mmwave_nn::{Dense, Adam, softmax_cross_entropy};
//! use rand::SeedableRng;
//!
//! // A tiny logistic-regression training step.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let mut layer = Dense::new(4, 3, &mut rng);
//! let mut adam = Adam::new(1e-2);
//! let x = [0.5_f32, -1.0, 0.25, 2.0];
//! let logits = layer.forward(&x);
//! let (loss, dlogits) = softmax_cross_entropy(&logits, 1);
//! assert!(loss > 0.0);
//! let _dx = layer.backward(&x, &dlogits);
//! adam.step(&mut layer.param_tensors());
//! ```

pub mod adam;
pub mod conv;
pub mod dense;
pub mod init;
pub mod loss;
pub mod lstm;
pub mod param;
pub mod persist;
pub mod pool;
pub mod sgd;

pub use adam::Adam;
pub use conv::Conv2d;
pub use dense::Dense;
pub use loss::{softmax, softmax_cross_entropy, try_softmax_cross_entropy, LossError};
pub use lstm::{Lstm, LstmCache};
pub use param::ParamTensor;
pub use pool::MaxPool2;
pub use sgd::Sgd;

/// Applies ReLU element-wise, returning the activated copy.
pub fn relu(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| v.max(0.0)).collect()
}

/// Backpropagates through ReLU: `dx = dy * (x > 0)`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn relu_backward(x: &[f32], dy: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), dy.len(), "relu backward length mismatch");
    x.iter()
        .zip(dy)
        .map(|(&xi, &di)| if xi > 0.0 { di } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(relu(&[-1.0, 0.0, 2.0]), vec![0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let x = [-1.0, 0.5, 0.0, 3.0];
        let dy = [1.0, 1.0, 1.0, 2.0];
        assert_eq!(relu_backward(&x, &dy), vec![0.0, 1.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn relu_backward_length_mismatch_panics() {
        relu_backward(&[1.0], &[1.0, 2.0]);
    }
}
