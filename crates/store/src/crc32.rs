//! CRC-32 (IEEE 802.3 polynomial, the zlib/`crc32` convention) with a
//! lazily built lookup table. Zero dependencies; checksums here guard
//! artifact payloads against bit rot and torn writes, not adversaries.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    })
}

/// CRC-32 of `bytes` (IEEE, reflected, init/xorout `0xFFFF_FFFF`) —
/// bit-compatible with zlib's `crc32()` and Python's `zlib.crc32`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let a = b"the journal line".to_vec();
        let mut b = a.clone();
        b[3] ^= 0x01;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
