//! Crash-safe whole-file writes: sibling temp file, fsync, rename.

use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::crash::crash_point;

/// Per-process counter so concurrent writers to the same target never
/// collide on a temp name.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: the bytes go to a sibling
/// `.tmp-<pid>-<seq>` file which is fsynced and then renamed over the
/// target, so a kill at any instant leaves either the previous file or
/// the complete new one. Parent directories are created as needed and the
/// parent directory is fsynced (best effort) after the rename so the new
/// entry survives a power cut.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => {
            std::fs::create_dir_all(p)?;
            Some(p)
        }
        _ => None,
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::other(format!("{}: not a file path", path.display())))?;
    let mut temp_name = file_name.to_os_string();
    temp_name.push(format!(
        ".tmp-{}-{}",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let temp = path.with_file_name(temp_name);

    crash_point("store.atomic.pre_temp");
    let result = (|| {
        let mut file = std::fs::File::create(&temp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        crash_point("store.atomic.pre_rename");
        std::fs::rename(&temp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&temp);
        return result;
    }
    if let Some(parent) = parent {
        // Directory fsync is advisory on some filesystems; ignore failures.
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_creates_parents_and_replaces() {
        let dir = std::env::temp_dir().join(format!("mmwave-store-a-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/deep/out.json");

        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer payload");

        // No temp litter left behind.
        let siblings: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(siblings, vec![std::ffi::OsString::from("out.json")]);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
