//! Named crash points: deterministic kill sites for chaos testing.
//!
//! Every artifact boundary in the pipeline calls
//! [`crash_point("stage.name")`](crash_point). In a normal process the call
//! is a no-op costing one relaxed atomic load. Two environment variables
//! turn the hooks on:
//!
//! * `MMWAVE_CRASH_AT=<name>[:<nth>]` — abort the process (simulating a
//!   `kill -9` mid-write) the `nth` time the named point is reached
//!   (default: the first). The abort bypasses destructors and `Drop`
//!   flushes, exactly like a real crash.
//! * `MMWAVE_CRASH_LOG=<path>` — append every crash-point name the process
//!   passes to `path`, one per line. The `mmwave chaos` driver uses a
//!   reference run's log to discover the kill matrix, so new crash points
//!   are picked up without registering them anywhere else.
//!
//! Both hooks are read once per process; changing the variables after the
//! first `crash_point` call has no effect.

use std::fs::OpenOptions;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

struct CrashConfig {
    /// Armed point name and the 1-based hit count that triggers the abort.
    armed: Option<(String, u64)>,
    /// Path every passed point name is appended to.
    log: Option<std::path::PathBuf>,
    /// Hits of the armed point so far.
    hits: AtomicU64,
    /// Serializes log appends across threads.
    log_lock: Mutex<()>,
}

fn config() -> &'static CrashConfig {
    static CONFIG: OnceLock<CrashConfig> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let armed = std::env::var("MMWAVE_CRASH_AT").ok().filter(|s| !s.is_empty()).map(|raw| {
            match raw.rsplit_once(':') {
                Some((name, nth)) => match nth.parse::<u64>() {
                    Ok(n) if n >= 1 => (name.to_string(), n),
                    _ => (raw.clone(), 1),
                },
                None => (raw.clone(), 1),
            }
        });
        let log = std::env::var("MMWAVE_CRASH_LOG")
            .ok()
            .filter(|s| !s.is_empty())
            .map(std::path::PathBuf::from);
        CrashConfig { armed, log, hits: AtomicU64::new(0), log_lock: Mutex::new(()) }
    })
}

/// A named, environment-armed kill site. No-op unless `MMWAVE_CRASH_AT`
/// names this point (then the process aborts on the configured hit) or
/// `MMWAVE_CRASH_LOG` is set (then the name is appended to the log).
pub fn crash_point(name: &str) {
    let cfg = config();
    if let Some(log) = &cfg.log {
        // Both Ok and Err of a poisoned lock hold the guard, so the append
        // stays serialized either way.
        let _guard = cfg.log_lock.lock();
        let append = OpenOptions::new().create(true).append(true).open(log);
        if let Ok(mut file) = append {
            let _ = writeln!(file, "{name}");
        }
    }
    if let Some((armed, nth)) = &cfg.armed {
        if armed == name {
            let hit = cfg.hits.fetch_add(1, Ordering::SeqCst) + 1;
            if hit == *nth {
                eprintln!("crash_point `{name}` armed (hit {hit}): aborting");
                std::process::abort();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_crash_point_is_a_no_op() {
        // The test process never sets MMWAVE_CRASH_AT for its own points;
        // this must simply return. (The armed path is exercised end to end
        // by `mmwave chaos` and tests/chaos_matrix.rs, which kill real
        // child processes.)
        crash_point("store.test.noop");
        crash_point("store.test.noop");
    }
}
