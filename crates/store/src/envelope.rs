//! The checksummed, versioned envelope for whole-file JSON artifacts.
//!
//! On-disk layout — one header line, then the payload bytes verbatim:
//!
//! ```text
//! MMWVSTORE1 {"len":123,"crc32":"89abcdef","git_sha":"1a2b3c4"}\n
//! {"the": "payload", ...}
//! ```
//!
//! The header names everything verification needs: `len` is the exact
//! payload byte count (shorter on disk ⇒ torn write), `crc32` is the
//! payload checksum in lowercase hex (mismatch ⇒ bit rot), and `git_sha`
//! records the writing build for provenance. The magic's trailing digits
//! are the schema version; a bigger number than [`SCHEMA_VERSION`] is a
//! file from the future and loads refuse to touch it.
//!
//! Files that predate the envelope (PR 1–4 artifacts) start with `{` or
//! `[`; if the whole file parses as JSON it loads in read-only
//! compatibility mode, flagged [`Format::LegacyBare`].

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::path::Path;

use crate::atomic::write_atomic;
use crate::crc32::crc32;
use crate::quarantine::quarantine_best_effort;
use crate::StoreError;

/// Magic prefix of an enveloped artifact, without the version digits.
pub const MAGIC_PREFIX: &str = "MMWVSTORE";

/// Envelope schema version this build reads and writes.
pub const SCHEMA_VERSION: u32 = 1;

/// How a successfully loaded artifact was stored on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Checksummed envelope written by this layer; integrity verified.
    Enveloped,
    /// Pre-envelope bare JSON from earlier releases; parsed but not
    /// checksum-verified. Re-saving upgrades it to the envelope.
    LegacyBare,
}

/// A loaded artifact plus how it was stored.
#[derive(Debug)]
pub struct Loaded<T> {
    /// The deserialized payload.
    pub value: T,
    /// Envelope or legacy bare JSON.
    pub format: Format,
}

#[derive(Serialize, serde::Deserialize)]
struct Header {
    len: u64,
    crc32: String,
    git_sha: String,
}

/// The git sha recorded in envelopes: `MMWAVE_GIT_SHA` if set, else the
/// repository HEAD, else `"unknown"`.
fn git_sha() -> String {
    if let Ok(sha) = std::env::var("MMWAVE_GIT_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Serializes `value` as pretty JSON and writes it to `path` atomically
/// inside a checksummed envelope.
pub fn save_json_atomic<T: Serialize>(path: &Path, value: &T) -> Result<(), StoreError> {
    let payload = serde_json::to_vec_pretty(value).map_err(|e| StoreError::Schema {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    let header = Header {
        len: payload.len() as u64,
        crc32: format!("{:08x}", crc32(&payload)),
        git_sha: git_sha(),
    };
    let header_json = serde_json::to_string(&header).map_err(|e| StoreError::Schema {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    let mut bytes = Vec::with_capacity(payload.len() + header_json.len() + 16);
    bytes.extend_from_slice(MAGIC_PREFIX.as_bytes());
    bytes.extend_from_slice(SCHEMA_VERSION.to_string().as_bytes());
    bytes.push(b' ');
    bytes.extend_from_slice(header_json.as_bytes());
    bytes.push(b'\n');
    bytes.extend_from_slice(&payload);
    write_atomic(path, &bytes).map_err(|e| StoreError::io(path, e))
}

/// Loads and verifies an artifact written by [`save_json_atomic`], or a
/// pre-envelope bare JSON file in read-only compatibility mode.
///
/// Torn and corrupt files are quarantined to `<path>.quarantine-<n>`
/// before the error returns, so the caller can immediately regenerate or
/// fall back; [`StoreError::quarantined`] says where the bytes went.
/// Version mismatches and schema drift leave the file untouched.
pub fn load_json<T: DeserializeOwned>(path: &Path) -> Result<Loaded<T>, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, e))?;
    match classify(path, &bytes) {
        Ok((payload, format)) => match serde_json::from_slice::<T>(payload) {
            Ok(value) => Ok(Loaded { value, format }),
            Err(e) => Err(StoreError::Schema { path: path.to_path_buf(), detail: e.to_string() }),
        },
        Err(Classified::Torn(detail)) => Err(StoreError::Torn {
            path: path.to_path_buf(),
            detail,
            quarantined: quarantine_best_effort(path),
        }),
        Err(Classified::Corrupt(detail)) => Err(StoreError::CorruptPayload {
            path: path.to_path_buf(),
            detail,
            quarantined: quarantine_best_effort(path),
        }),
        Err(Classified::Version(found)) => Err(StoreError::VersionMismatch {
            path: path.to_path_buf(),
            found,
            supported: SCHEMA_VERSION,
        }),
    }
}

enum Classified {
    Torn(String),
    Corrupt(String),
    Version(u32),
}

/// Splits `bytes` into the verified payload slice, or classifies why it
/// cannot be trusted.
fn classify<'a>(path: &Path, bytes: &'a [u8]) -> Result<(&'a [u8], Format), Classified> {
    if bytes.is_empty() {
        return Err(Classified::Torn("file is empty".to_string()));
    }
    if !bytes.starts_with(MAGIC_PREFIX.as_bytes()) {
        // Legacy compatibility: a pre-envelope artifact is bare JSON.
        if matches!(bytes[0], b'{' | b'[') && serde_json::from_slice::<serde_json::Value>(bytes).is_ok()
        {
            mmwave_telemetry::counter("store.legacy_loaded", 1);
            mmwave_telemetry::debug!(
                "loaded pre-envelope artifact {} in compatibility mode",
                path.display()
            );
            return Ok((bytes, Format::LegacyBare));
        }
        if matches!(bytes[0], b'{' | b'[') {
            // Started like JSON but does not parse: a torn legacy write.
            return Err(Classified::Torn("bare JSON is truncated or malformed".to_string()));
        }
        return Err(Classified::Corrupt("no envelope magic and not JSON".to_string()));
    }
    let Some(newline) = bytes.iter().position(|&b| b == b'\n') else {
        return Err(Classified::Torn("header line has no terminating newline".to_string()));
    };
    let header_line = &bytes[MAGIC_PREFIX.len()..newline];
    let Some(space) = header_line.iter().position(|&b| b == b' ') else {
        return Err(Classified::Torn("header missing version/body separator".to_string()));
    };
    let version_digits = &header_line[..space];
    let version = match std::str::from_utf8(version_digits).ok().and_then(|s| s.parse::<u32>().ok())
    {
        Some(v) => v,
        None => return Err(Classified::Corrupt("unparseable envelope version".to_string())),
    };
    if version != SCHEMA_VERSION {
        return Err(Classified::Version(version));
    }
    let header: Header = match serde_json::from_slice(&header_line[space + 1..]) {
        Ok(h) => h,
        Err(e) => return Err(Classified::Torn(format!("unparseable header: {e}"))),
    };
    let payload = &bytes[newline + 1..];
    let expected_len = header.len as usize;
    if payload.len() < expected_len {
        return Err(Classified::Torn(format!(
            "payload is {} bytes, header promises {expected_len}",
            payload.len()
        )));
    }
    if payload.len() > expected_len {
        return Err(Classified::Corrupt(format!(
            "payload is {} bytes, header promises {expected_len}",
            payload.len()
        )));
    }
    let actual = format!("{:08x}", crc32(payload));
    if actual != header.crc32 {
        return Err(Classified::Corrupt(format!(
            "crc32 mismatch: file says {}, payload hashes to {actual}",
            header.crc32
        )));
    }
    Ok((payload, Format::Enveloped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mmwave-store-env-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[derive(Serialize, serde::Deserialize, Debug, PartialEq)]
    struct Doc {
        name: String,
        values: Vec<f64>,
    }

    fn doc() -> Doc {
        Doc { name: "baseline".to_string(), values: vec![1.0, 2.5, -3.25] }
    }

    #[test]
    fn round_trip_is_enveloped_and_verified() {
        let dir = temp_dir("rt");
        let path = dir.join("doc.json");
        save_json_atomic(&path, &doc()).unwrap();

        let raw = std::fs::read_to_string(&path).unwrap();
        assert!(raw.starts_with("MMWVSTORE1 "), "header missing: {raw}");

        let loaded: Loaded<Doc> = load_json(&path).unwrap();
        assert_eq!(loaded.value, doc());
        assert_eq!(loaded.format, Format::Enveloped);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_bare_json_loads_in_compat_mode() {
        let dir = temp_dir("legacy");
        let path = dir.join("old.json");
        std::fs::write(&path, serde_json::to_vec_pretty(&doc()).unwrap()).unwrap();
        let loaded: Loaded<Doc> = load_json(&path).unwrap();
        assert_eq!(loaded.value, doc());
        assert_eq!(loaded.format, Format::LegacyBare);
        // The original file is untouched by a read.
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_missing_not_io() {
        let dir = temp_dir("missing");
        let err = load_json::<Doc>(&dir.join("absent.json")).unwrap_err();
        assert!(matches!(err, StoreError::Missing { .. }), "{err}");
        assert!(err.to_string().contains("absent.json"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_envelope_is_torn_and_quarantined() {
        let dir = temp_dir("torn");
        let path = dir.join("doc.json");
        save_json_atomic(&path, &doc()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let err = load_json::<Doc>(&path).unwrap_err();
        assert!(matches!(err, StoreError::Torn { .. }), "{err}");
        assert!(err.is_recoverable());
        let q = err.quarantined().expect("quarantined").to_path_buf();
        assert!(!path.exists());
        assert_eq!(std::fs::read(&q).unwrap(), bytes[..bytes.len() - 7]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_file_is_torn() {
        let dir = temp_dir("empty");
        let path = dir.join("doc.json");
        std::fs::write(&path, b"").unwrap();
        let err = load_json::<Doc>(&path).unwrap_err();
        assert!(matches!(err, StoreError::Torn { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_is_corrupt_and_quarantined() {
        let dir = temp_dir("flip");
        let path = dir.join("doc.json");
        save_json_atomic(&path, &doc()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let err = load_json::<Doc>(&path).unwrap_err();
        assert!(matches!(err, StoreError::CorruptPayload { .. }), "{err}");
        assert!(err.is_recoverable());
        assert!(err.quarantined().is_some());
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_version_is_refused_and_left_in_place() {
        let dir = temp_dir("ver");
        let path = dir.join("doc.json");
        std::fs::write(&path, b"MMWVSTORE99 {\"len\":2,\"crc32\":\"00000000\",\"git_sha\":\"x\"}\n{}")
            .unwrap();
        let err = load_json::<Doc>(&path).unwrap_err();
        match err {
            StoreError::VersionMismatch { found, supported, .. } => {
                assert_eq!(found, 99);
                assert_eq!(supported, SCHEMA_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other}"),
        }
        assert!(path.exists(), "version mismatch must not quarantine");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_drift_is_reported_with_path_and_not_quarantined() {
        let dir = temp_dir("schema");
        let path = dir.join("doc.json");
        save_json_atomic(&path, &serde_json::json!({"unexpected": true})).unwrap();
        let err = load_json::<Doc>(&path).unwrap_err();
        assert!(matches!(err, StoreError::Schema { .. }), "{err}");
        assert!(err.to_string().contains("doc.json"));
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_json_garbage_is_corrupt() {
        let dir = temp_dir("garbage");
        let path = dir.join("doc.json");
        std::fs::write(&path, b"\x00\x01\x02 binary junk").unwrap();
        let err = load_json::<Doc>(&path).unwrap_err();
        assert!(matches!(err, StoreError::CorruptPayload { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_legacy_json_is_torn() {
        let dir = temp_dir("legacy-torn");
        let path = dir.join("old.json");
        std::fs::write(&path, b"{\"name\": \"basel").unwrap();
        let err = load_json::<Doc>(&path).unwrap_err();
        assert!(matches!(err, StoreError::Torn { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
