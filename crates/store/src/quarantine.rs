//! Moving bad artifacts aside instead of deleting them.

use std::io;
use std::path::{Path, PathBuf};

/// Moves `path` to the first free `<path>.quarantine-<n>` sibling and
/// returns the destination. The original bytes are preserved for
/// post-mortem inspection; the original path is freed so the caller can
/// regenerate the artifact or fall back to an earlier one.
pub fn quarantine_file(path: &Path) -> io::Result<PathBuf> {
    let mut name = path.as_os_str().to_os_string();
    name.push(".quarantine-");
    for n in 0u32..10_000 {
        let mut candidate = name.clone();
        candidate.push(n.to_string());
        let candidate = PathBuf::from(candidate);
        if candidate.exists() {
            continue;
        }
        std::fs::rename(path, &candidate)?;
        mmwave_telemetry::counter("store.quarantined", 1);
        mmwave_telemetry::warn!(
            "quarantined corrupt artifact {} -> {}",
            path.display(),
            candidate.display()
        );
        return Ok(candidate);
    }
    Err(io::Error::other(format!(
        "{}: exhausted quarantine slots (10000 siblings exist)",
        path.display()
    )))
}

/// Quarantines `path`, swallowing (but logging) failures — used on load
/// paths where the quarantine is best-effort and the classified error is
/// what the caller needs.
pub(crate) fn quarantine_best_effort(path: &Path) -> Option<PathBuf> {
    match quarantine_file(path) {
        Ok(dest) => Some(dest),
        Err(err) => {
            mmwave_telemetry::warn!("failed to quarantine {}: {err}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_moves_and_numbers_sequentially() {
        let dir = std::env::temp_dir().join(format!("mmwave-store-q-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");

        std::fs::write(&path, b"bad one").unwrap();
        let q0 = quarantine_file(&path).unwrap();
        assert_eq!(q0, dir.join("artifact.json.quarantine-0"));
        assert!(!path.exists());
        assert_eq!(std::fs::read(&q0).unwrap(), b"bad one");

        std::fs::write(&path, b"bad two").unwrap();
        let q1 = quarantine_file(&path).unwrap();
        assert_eq!(q1, dir.join("artifact.json.quarantine-1"));
        assert_eq!(std::fs::read(&q1).unwrap(), b"bad two");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_of_missing_file_errors() {
        let dir = std::env::temp_dir().join(format!("mmwave-store-qm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(quarantine_file(&dir.join("nope.json")).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
