//! CRC-per-line framing for append-only JSONL journals.
//!
//! Each appended record is one line of the form
//!
//! ```text
//! <8 lowercase hex digits of crc32(json)> <json>\n
//! ```
//!
//! so replay can verify every line independently. Replay repair handles
//! the two ways an append-only file goes bad:
//!
//! * **Torn tail** — the last line is incomplete (kill mid-append). The
//!   file is truncated back to the end of the last valid line so later
//!   appends continue from a clean boundary instead of concatenating onto
//!   partial bytes.
//! * **Mid-file corruption** — a line that is neither framed nor valid
//!   JSON appears before the end. The whole file is copied to quarantine
//!   and the valid *prefix* is rewritten atomically; lines after the
//!   damage are dropped (their order can no longer be trusted).
//!
//! Unframed lines that parse as JSON are accepted as-is (pre-envelope
//! journals from earlier releases) and counted in
//! [`JsonlReplay::legacy_lines`].

use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::crash::crash_point;
use crate::crc32::crc32;
use crate::quarantine::quarantine_best_effort;
use crate::StoreError;

/// Appends one JSON record (a single line, no trailing newline) to `path`
/// with a CRC frame, then fsyncs.
///
/// `torn_crash_point`, when given, names a [`crash_point`] fired after
/// roughly half the framed line has reached the file — arming it
/// simulates a kill mid-append and must leave a tail that replay repairs.
pub fn append_jsonl(path: &Path, json: &str, torn_crash_point: Option<&str>) -> io::Result<()> {
    debug_assert!(!json.contains('\n'), "JSONL records must be single-line");
    let mut frame = format!("{:08x} ", crc32(json.as_bytes()));
    frame.push_str(json);
    frame.push('\n');
    let bytes = frame.as_bytes();

    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    match torn_crash_point {
        Some(name) => {
            let split = bytes.len() / 2;
            file.write_all(&bytes[..split])?;
            crash_point(name);
            file.write_all(&bytes[split..])?;
        }
        None => file.write_all(bytes)?,
    }
    file.sync_all()
}

/// Result of [`read_jsonl_repair`]: the trusted records plus what repair
/// had to do to get them.
#[derive(Debug, Default)]
pub struct JsonlReplay {
    /// The JSON text of each valid record, frame stripped, in file order.
    pub lines: Vec<String>,
    /// Count of accepted unframed (pre-envelope) lines.
    pub legacy_lines: usize,
    /// True when an incomplete last line was truncated away.
    pub torn_tail_truncated: bool,
    /// Where the original file was preserved when mid-file corruption
    /// forced a prefix rewrite.
    pub quarantined: Option<PathBuf>,
    /// Count of lines dropped after a mid-file corruption.
    pub dropped_lines: usize,
}

enum Line<'a> {
    Framed(&'a str),
    Legacy(&'a str),
    Invalid,
}

fn classify_line(line: &str) -> Line<'_> {
    if line.len() > 9 && line.as_bytes()[8] == b' ' {
        let (crc_hex, rest) = (&line[..8], &line[9..]);
        if crc_hex.bytes().all(|b| b.is_ascii_hexdigit())
            && u32::from_str_radix(crc_hex, 16).map(|c| c == crc32(rest.as_bytes())).unwrap_or(false)
        {
            return Line::Framed(rest);
        }
    }
    if serde_json::from_str::<serde_json::Value>(line).is_ok() {
        return Line::Legacy(line);
    }
    Line::Invalid
}

/// Reads a (possibly damaged) CRC-framed JSONL file, repairing it on disk
/// as described in the module docs, and returns the trusted records.
/// A missing file yields an empty replay.
pub fn read_jsonl_repair(path: &Path) -> Result<JsonlReplay, StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(JsonlReplay::default()),
        Err(e) => return Err(StoreError::io(path, e)),
    };
    let text = String::from_utf8_lossy(&bytes);

    let mut replay = JsonlReplay::default();
    // Byte offset just past the newline of the last valid line seen so
    // far — the truncation point if damage follows.
    let mut valid_end = 0usize;
    let mut offset = 0usize;
    let mut first_invalid: Option<usize> = None;

    for segment in text.split_inclusive('\n') {
        let start = offset;
        offset += segment.len();
        let terminated = segment.ends_with('\n');
        let line = segment.trim_end_matches('\n').trim_end_matches('\r');
        if line.is_empty() && terminated {
            // A blank line is tolerated noise, not damage.
            valid_end = offset;
            continue;
        }
        match classify_line(line) {
            Line::Framed(json) if terminated => {
                replay.lines.push(json.to_string());
                valid_end = offset;
            }
            Line::Legacy(json) if terminated => {
                replay.lines.push(json.to_string());
                replay.legacy_lines += 1;
                valid_end = offset;
            }
            // An unterminated final line is torn even if its content
            // happens to verify — the newline is part of the frame.
            _ => {
                first_invalid = Some(start);
                break;
            }
        }
    }

    let Some(invalid_at) = first_invalid else {
        return Ok(replay);
    };

    let tail_only = invalid_at == valid_end && {
        // The invalid region is the final line iff nothing follows its
        // own (missing or damaged) line terminator.
        let rest = &text[invalid_at..];
        match rest.find('\n') {
            None => true,
            Some(nl) => rest[nl + 1..].trim().is_empty(),
        }
    };

    if tail_only {
        // Kill-mid-append signature: truncate back to the last clean line.
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(path, e))?;
        file.set_len(valid_end as u64).map_err(|e| StoreError::io(path, e))?;
        file.sync_all().map_err(|e| StoreError::io(path, e))?;
        replay.torn_tail_truncated = true;
        mmwave_telemetry::counter("store.torn_truncated", 1);
        mmwave_telemetry::warn!(
            "{}: truncated torn trailing line at byte {valid_end}",
            path.display()
        );
        return Ok(replay);
    }

    // Mid-file corruption: preserve the original, rewrite the prefix.
    let quarantine_copy = path.with_extension("jsonl.pre-repair");
    let quarantined = match std::fs::copy(path, &quarantine_copy) {
        Ok(_) => quarantine_best_effort(&quarantine_copy),
        Err(_) => None,
    };
    crate::atomic::write_atomic(path, text[..valid_end].as_bytes())
        .map_err(|e| StoreError::io(path, e))?;
    replay.dropped_lines =
        text[invalid_at..].split('\n').filter(|l| !l.trim().is_empty()).count();
    replay.quarantined = quarantined;
    mmwave_telemetry::counter("store.jsonl_repaired", 1);
    mmwave_telemetry::warn!(
        "{}: mid-file corruption; kept {} lines, dropped {}",
        path.display(),
        replay.lines.len(),
        replay.dropped_lines
    );
    Ok(replay)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mmwave-store-jl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = temp_dir("rt");
        let path = dir.join("journal.jsonl");
        append_jsonl(&path, r#"{"id":"a","v":1}"#, None).unwrap();
        append_jsonl(&path, r#"{"id":"b","v":2}"#, None).unwrap();

        let raw = std::fs::read_to_string(&path).unwrap();
        for line in raw.lines() {
            assert_eq!(line.as_bytes()[8], b' ', "line not framed: {line}");
        }

        let replay = read_jsonl_repair(&path).unwrap();
        assert_eq!(replay.lines, vec![r#"{"id":"a","v":1}"#, r#"{"id":"b","v":2}"#]);
        assert_eq!(replay.legacy_lines, 0);
        assert!(!replay.torn_tail_truncated);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_replay() {
        let dir = temp_dir("missing");
        let replay = read_jsonl_repair(&dir.join("absent.jsonl")).unwrap();
        assert!(replay.lines.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_unframed_lines_are_accepted() {
        let dir = temp_dir("legacy");
        let path = dir.join("journal.jsonl");
        std::fs::write(&path, "{\"id\":\"old\"}\n").unwrap();
        append_jsonl(&path, r#"{"id":"new"}"#, None).unwrap();

        let replay = read_jsonl_repair(&path).unwrap();
        assert_eq!(replay.lines, vec![r#"{"id":"old"}"#, r#"{"id":"new"}"#]);
        assert_eq!(replay.legacy_lines, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume_cleanly() {
        let dir = temp_dir("torn");
        let path = dir.join("journal.jsonl");
        append_jsonl(&path, r#"{"id":"a"}"#, None).unwrap();
        let clean_len = std::fs::metadata(&path).unwrap().len();

        // Simulate a kill mid-append: half a framed line, no newline.
        let mut file = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"deadbeef {\"id\":\"b\"").unwrap();
        drop(file);

        let replay = read_jsonl_repair(&path).unwrap();
        assert_eq!(replay.lines, vec![r#"{"id":"a"}"#]);
        assert!(replay.torn_tail_truncated);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);

        // The next append lands on a clean boundary.
        append_jsonl(&path, r#"{"id":"c"}"#, None).unwrap();
        let replay = read_jsonl_repair(&path).unwrap();
        assert_eq!(replay.lines, vec![r#"{"id":"a"}"#, r#"{"id":"c"}"#]);
        assert!(!replay.torn_tail_truncated);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn complete_final_line_with_bad_crc_is_treated_as_tail_damage() {
        let dir = temp_dir("badcrc");
        let path = dir.join("journal.jsonl");
        append_jsonl(&path, r#"{"id":"a"}"#, None).unwrap();
        // Framed line whose crc does not match its json — not valid JSON
        // by itself either (the frame prefix), so it cannot be legacy.
        let mut file = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"00000000 {\"id\":\"b\"}\n").unwrap();
        drop(file);

        let replay = read_jsonl_repair(&path).unwrap();
        assert_eq!(replay.lines, vec![r#"{"id":"a"}"#]);
        assert!(replay.torn_tail_truncated);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_corruption_quarantines_and_keeps_prefix() {
        let dir = temp_dir("mid");
        let path = dir.join("journal.jsonl");
        append_jsonl(&path, r#"{"id":"a"}"#, None).unwrap();
        append_jsonl(&path, r#"{"id":"b"}"#, None).unwrap();
        append_jsonl(&path, r#"{"id":"c"}"#, None).unwrap();

        // Flip a byte inside line b's JSON.
        let mut bytes = std::fs::read(&path).unwrap();
        let raw = String::from_utf8(bytes.clone()).unwrap();
        let line_b_start = raw.find("\n").unwrap() + 1;
        bytes[line_b_start + 12] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();

        let replay = read_jsonl_repair(&path).unwrap();
        assert_eq!(replay.lines, vec![r#"{"id":"a"}"#]);
        assert_eq!(replay.dropped_lines, 2);
        let q = replay.quarantined.clone().expect("quarantined copy");
        assert_eq!(std::fs::read(&q).unwrap(), bytes, "original bytes preserved");

        // The on-disk file is now the clean prefix; a re-read is clean.
        let replay2 = read_jsonl_repair(&path).unwrap();
        assert_eq!(replay2.lines, vec![r#"{"id":"a"}"#]);
        assert!(replay2.quarantined.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let dir = temp_dir("blank");
        let path = dir.join("journal.jsonl");
        append_jsonl(&path, r#"{"id":"a"}"#, None).unwrap();
        let mut file = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"\n").unwrap();
        drop(file);
        append_jsonl(&path, r#"{"id":"b"}"#, None).unwrap();

        let replay = read_jsonl_repair(&path).unwrap();
        assert_eq!(replay.lines, vec![r#"{"id":"a"}"#, r#"{"id":"b"}"#]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
