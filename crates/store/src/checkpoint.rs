//! Last-K numbered checkpoints with automatic fallback on corruption.
//!
//! A [`CheckpointSet`] owns files named `<base>.<seq>.json` inside one
//! directory, each an enveloped JSON artifact. Saving sequence `n` prunes
//! everything older than the newest `keep` files; loading tries the
//! newest first and, when it is torn or corrupt (already quarantined by
//! the envelope loader), silently falls back to the next-older one. A
//! legacy bare `<base>.json` (pre-envelope single checkpoint) is tried
//! last, in read-only compatibility mode.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::path::{Path, PathBuf};

use crate::envelope::{load_json, save_json_atomic, Format};
use crate::StoreError;

/// A rotating set of `<base>.<seq>.json` checkpoints under one directory.
#[derive(Debug, Clone)]
pub struct CheckpointSet {
    dir: PathBuf,
    base: String,
    keep: usize,
}

/// A checkpoint recovered by [`CheckpointSet::load_latest`].
#[derive(Debug)]
pub struct LoadedCheckpoint<T> {
    /// The deserialized checkpoint.
    pub value: T,
    /// Its sequence number; `None` for the legacy un-numbered file.
    pub seq: Option<u64>,
    /// How it was stored on disk.
    pub format: Format,
    /// How many newer checkpoints were corrupt and skipped over.
    pub fallbacks: usize,
}

impl CheckpointSet {
    /// A checkpoint set rooted at `dir` using `base` as the filename stem,
    /// retaining the newest `keep` files (minimum 1).
    pub fn new(dir: impl Into<PathBuf>, base: impl Into<String>, keep: usize) -> CheckpointSet {
        CheckpointSet { dir: dir.into(), base: base.into(), keep: keep.max(1) }
    }

    /// Path of the checkpoint with sequence number `seq`.
    pub fn path_for(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("{}.{seq}.json", self.base))
    }

    /// Path of the pre-envelope single-file checkpoint, read for
    /// compatibility and removed by [`Self::clear`].
    pub fn legacy_path(&self) -> PathBuf {
        self.dir.join(format!("{}.json", self.base))
    }

    /// Saves `value` as sequence `seq` (atomic, enveloped) and prunes
    /// checkpoints beyond the newest `keep`.
    pub fn save<T: Serialize>(&self, seq: u64, value: &T) -> Result<(), StoreError> {
        save_json_atomic(&self.path_for(seq), value)?;
        self.prune();
        Ok(())
    }

    /// Loads the newest readable checkpoint, quarantining and skipping
    /// corrupt ones. `Ok(None)` when no checkpoint exists at all.
    /// Version-mismatch and schema errors propagate — they mean an
    /// incompatible writer, not disk damage, and skipping them would
    /// silently resume from stale state.
    pub fn load_latest<T: DeserializeOwned>(
        &self,
    ) -> Result<Option<LoadedCheckpoint<T>>, StoreError> {
        let mut fallbacks = 0usize;
        for seq in self.sequences() {
            match load_json::<T>(&self.path_for(seq)) {
                Ok(loaded) => {
                    return Ok(Some(LoadedCheckpoint {
                        value: loaded.value,
                        seq: Some(seq),
                        format: loaded.format,
                        fallbacks,
                    }))
                }
                Err(err) if err.is_recoverable() => {
                    mmwave_telemetry::counter("store.checkpoint_fallback", 1);
                    mmwave_telemetry::warn!("checkpoint fallback: {err}");
                    fallbacks += 1;
                }
                Err(StoreError::Missing { .. }) => {}
                Err(err) => return Err(err),
            }
        }
        let legacy = self.legacy_path();
        match load_json::<T>(&legacy) {
            Ok(loaded) => Ok(Some(LoadedCheckpoint {
                value: loaded.value,
                seq: None,
                format: loaded.format,
                fallbacks,
            })),
            Err(StoreError::Missing { .. }) => Ok(None),
            Err(err) if err.is_recoverable() => {
                mmwave_telemetry::counter("store.checkpoint_fallback", 1);
                mmwave_telemetry::warn!("legacy checkpoint unreadable: {err}");
                Ok(None)
            }
            Err(err) => Err(err),
        }
    }

    /// Removes every checkpoint in the set (numbered and legacy) — called
    /// when the guarded computation completes and the checkpoints are no
    /// longer needed. Quarantined files are left for inspection.
    pub fn clear(&self) {
        for seq in self.sequences() {
            let _ = std::fs::remove_file(self.path_for(seq));
        }
        let _ = std::fs::remove_file(self.legacy_path());
    }

    /// Existing sequence numbers, newest first.
    fn sequences(&self) -> Vec<u64> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return Vec::new() };
        let prefix = format!("{}.", self.base);
        let mut seqs: Vec<u64> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter_map(|name| {
                let stem = name.strip_prefix(&prefix)?.strip_suffix(".json")?;
                stem.parse::<u64>().ok()
            })
            .collect();
        seqs.sort_unstable_by(|a, b| b.cmp(a));
        seqs
    }

    fn prune(&self) {
        for seq in self.sequences().into_iter().skip(self.keep) {
            let _ = std::fs::remove_file(self.path_for(seq));
        }
    }
}

/// Is this path inside `dir` a quarantined sibling (kept by
/// [`CheckpointSet::clear`])? Exposed for tests and diagnostics.
pub fn is_quarantine_file(path: &Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.contains(".quarantine-"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mmwave-store-ck-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[derive(Serialize, serde::Deserialize, Debug, PartialEq)]
    struct Ck {
        epoch: u64,
        loss: f64,
    }

    #[test]
    fn save_prunes_to_last_k_and_loads_newest() {
        let dir = temp_dir("prune");
        let set = CheckpointSet::new(&dir, "ck", 3);
        for epoch in 0..6u64 {
            set.save(epoch, &Ck { epoch, loss: 1.0 / (epoch + 1) as f64 }).unwrap();
        }
        assert_eq!(set.sequences(), vec![5, 4, 3]);

        let loaded = set.load_latest::<Ck>().unwrap().unwrap();
        assert_eq!(loaded.seq, Some(5));
        assert_eq!(loaded.value.epoch, 5);
        assert_eq!(loaded.fallbacks, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_and_quarantines() {
        let dir = temp_dir("fallback");
        let set = CheckpointSet::new(&dir, "ck", 3);
        for epoch in 0..3u64 {
            set.save(epoch, &Ck { epoch, loss: 0.5 }).unwrap();
        }
        // Tear the newest checkpoint.
        let newest = set.path_for(2);
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

        let loaded = set.load_latest::<Ck>().unwrap().unwrap();
        assert_eq!(loaded.seq, Some(1));
        assert_eq!(loaded.fallbacks, 1);
        assert!(!newest.exists(), "torn checkpoint moved aside");
        assert!(dir
            .read_dir()
            .unwrap()
            .any(|e| is_quarantine_file(&e.unwrap().path())));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_corrupt_yields_none() {
        let dir = temp_dir("allbad");
        let set = CheckpointSet::new(&dir, "ck", 3);
        set.save(0, &Ck { epoch: 0, loss: 0.5 }).unwrap();
        std::fs::write(set.path_for(0), b"\x00garbage").unwrap();
        assert!(set.load_latest::<Ck>().unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_single_file_checkpoint_is_tried_last() {
        let dir = temp_dir("legacy");
        let set = CheckpointSet::new(&dir, "trainer_checkpoint", 3);
        std::fs::write(
            set.legacy_path(),
            serde_json::to_vec_pretty(&Ck { epoch: 7, loss: 0.25 }).unwrap(),
        )
        .unwrap();

        let loaded = set.load_latest::<Ck>().unwrap().unwrap();
        assert_eq!(loaded.seq, None);
        assert_eq!(loaded.format, Format::LegacyBare);
        assert_eq!(loaded.value.epoch, 7);

        // A numbered save takes precedence on the next load.
        set.save(8, &Ck { epoch: 8, loss: 0.2 }).unwrap();
        let loaded = set.load_latest::<Ck>().unwrap().unwrap();
        assert_eq!(loaded.seq, Some(8));

        set.clear();
        assert!(set.load_latest::<Ck>().unwrap().is_none());
        assert!(!set.legacy_path().exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_yields_none() {
        let set = CheckpointSet::new("/nonexistent/surely/absent", "ck", 2);
        assert!(set.load_latest::<Ck>().unwrap().is_none());
    }
}
