//! # mmwave-store — the durable artifact layer
//!
//! Every artifact the pipeline trusts across process lifetimes — campaign
//! journals and reports, trainer checkpoints, model JSON, perf baselines —
//! goes through this crate instead of bare `fs::write`:
//!
//! * **Atomic writes** ([`write_atomic`], [`save_json_atomic`]): write to a
//!   sibling temp file, `fsync`, rename over the target, `fsync` the
//!   directory. A kill at any instant leaves either the old artifact or
//!   the new one — never a torn hybrid.
//! * **Checksummed envelopes** ([`save_json_atomic`], [`load_json`]):
//!   whole-file JSON artifacts carry a one-line header (magic, schema
//!   version, payload length, CRC-32, git sha) so load-time verification
//!   can tell *how* a file went bad: [`StoreError::Torn`] (truncated),
//!   [`StoreError::CorruptPayload`] (bit rot / tampering), or
//!   [`StoreError::VersionMismatch`] (a future writer). Pre-envelope bare
//!   JSON from earlier releases still loads, flagged
//!   [`Format::LegacyBare`].
//! * **CRC-per-line JSONL** ([`append_jsonl`], [`read_jsonl_repair`]): an
//!   append-only journal where each line is individually framed with its
//!   checksum; replay truncates to the last valid line (the kill-mid-append
//!   signature) and quarantines mid-file corruption.
//! * **Quarantine** ([`quarantine_file`]): a bad artifact is *moved* to
//!   `<path>.quarantine-<n>`, never deleted, so the evidence survives the
//!   recovery and the writer can regenerate into a clean path.
//! * **Last-K checkpoints** ([`CheckpointSet`]): numbered checkpoint files
//!   with automatic fallback — if the newest is torn or corrupt it is
//!   quarantined and the next-older one loads instead.
//! * **Atomic claims** ([`claim`]): `O_EXCL`-create claim files with
//!   mtime heartbeats and rename-based stale reclaim — the cross-process
//!   mutual exclusion under `mmwave worker` campaign DAGs.
//! * **Content-addressed keys** ([`content_key`]): FNV-1a keys over task
//!   specifications, the dedupe primitive for shared campaign prefixes.
//! * **Crash points** ([`crash_point`]): named kill sites at every
//!   artifact boundary, armed via `MMWAVE_CRASH_AT` and enumerated via
//!   `MMWAVE_CRASH_LOG`, which the `mmwave chaos` subcommand turns into a
//!   kill-and-resume test matrix.
//!
//! The durability layer itself must never panic on bad input:
//! `clippy::unwrap_used` is denied outside tests.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod atomic;
mod crash;
mod crc32;
mod envelope;
mod jsonl;
mod key;
mod quarantine;

pub mod checkpoint;
pub mod claim;

pub use atomic::write_atomic;
pub use checkpoint::{CheckpointSet, LoadedCheckpoint};
pub use claim::{
    acquire_claim, read_claim, read_claim_age, reclaim_stale, refresh_claim, release_claim,
    ClaimAttempt, ClaimInfo,
};
pub use crash::crash_point;
pub use crc32::crc32;
pub use envelope::{load_json, save_json_atomic, Format, Loaded, MAGIC_PREFIX, SCHEMA_VERSION};
pub use jsonl::{append_jsonl, read_jsonl_repair, JsonlReplay};
pub use key::{content_key, fnv1a64};
pub use quarantine::quarantine_file;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Why a durable artifact failed to load, with the offending path and —
/// for the corruption cases — where the bad bytes were preserved.
#[derive(Debug)]
pub enum StoreError {
    /// The artifact does not exist.
    Missing {
        /// The path that was asked for.
        path: PathBuf,
    },
    /// The file is an incomplete write: empty, a header without its
    /// payload, or a payload shorter than the header promises. The
    /// signature of a kill mid-write through a non-atomic writer.
    Torn {
        /// The offending path.
        path: PathBuf,
        /// What exactly was truncated.
        detail: String,
        /// Where the bad file was moved, when quarantine succeeded.
        quarantined: Option<PathBuf>,
    },
    /// The file is complete but its payload fails the checksum (or is not
    /// JSON at all): bit rot, tampering, or a foreign file.
    CorruptPayload {
        /// The offending path.
        path: PathBuf,
        /// Checksum / parse mismatch details.
        detail: String,
        /// Where the bad file was moved, when quarantine succeeded.
        quarantined: Option<PathBuf>,
    },
    /// The envelope was written by an incompatible (newer) schema. The
    /// file is left in place untouched.
    VersionMismatch {
        /// The offending path.
        path: PathBuf,
        /// Version found in the file.
        found: u32,
        /// Version this build reads.
        supported: u32,
    },
    /// The payload passed its checksum but does not deserialize into the
    /// requested type — a schema drift between writer and reader, not
    /// on-disk damage. The file is left in place.
    Schema {
        /// The offending path.
        path: PathBuf,
        /// Deserialization error.
        detail: String,
    },
    /// An underlying I/O failure (permissions, disk full, ...).
    Io {
        /// The offending path.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
}

impl StoreError {
    /// The path the failure is about.
    pub fn path(&self) -> &Path {
        match self {
            StoreError::Missing { path }
            | StoreError::Torn { path, .. }
            | StoreError::CorruptPayload { path, .. }
            | StoreError::VersionMismatch { path, .. }
            | StoreError::Schema { path, .. }
            | StoreError::Io { path, .. } => path,
        }
    }

    /// Where the bad file was quarantined, if it was.
    pub fn quarantined(&self) -> Option<&Path> {
        match self {
            StoreError::Torn { quarantined, .. }
            | StoreError::CorruptPayload { quarantined, .. } => quarantined.as_deref(),
            _ => None,
        }
    }

    /// True for the failure modes a caller can recover from without human
    /// intervention: the bad file has been moved aside ([`Self::Torn`],
    /// [`Self::CorruptPayload`]), so the caller may regenerate the
    /// artifact in place (baselines, traces) or fall back to an earlier
    /// one (checkpoints, journals).
    pub fn is_recoverable(&self) -> bool {
        matches!(self, StoreError::Torn { .. } | StoreError::CorruptPayload { .. })
    }

    /// Converts into an [`io::Error`] preserving the full message, for
    /// callers whose public APIs speak `io::Result`.
    pub fn into_io(self) -> io::Error {
        let kind = match &self {
            StoreError::Missing { .. } => io::ErrorKind::NotFound,
            StoreError::Io { source, .. } => source.kind(),
            _ => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, self.to_string())
    }

    pub(crate) fn io(path: &Path, source: io::Error) -> StoreError {
        if source.kind() == io::ErrorKind::NotFound {
            StoreError::Missing { path: path.to_path_buf() }
        } else {
            StoreError::Io { path: path.to_path_buf(), source }
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Missing { path } => {
                write!(f, "{}: artifact not found", path.display())
            }
            StoreError::Torn { path, detail, quarantined } => {
                write!(f, "{}: torn artifact ({detail})", path.display())?;
                if let Some(q) = quarantined {
                    write!(f, "; quarantined to {}", q.display())?;
                }
                Ok(())
            }
            StoreError::CorruptPayload { path, detail, quarantined } => {
                write!(f, "{}: corrupt payload ({detail})", path.display())?;
                if let Some(q) = quarantined {
                    write!(f, "; quarantined to {}", q.display())?;
                }
                Ok(())
            }
            StoreError::VersionMismatch { path, found, supported } => write!(
                f,
                "{}: envelope schema version {found} (this build reads {supported})",
                path.display()
            ),
            StoreError::Schema { path, detail } => {
                write!(f, "{}: payload does not match the expected schema: {detail}", path.display())
            }
            StoreError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StoreError> for io::Error {
    fn from(e: StoreError) -> io::Error {
        e.into_io()
    }
}
