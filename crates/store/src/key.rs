//! Content-addressed artifact keys.
//!
//! A key is the FNV-1a 64-bit hash of an artifact's *specification* bytes
//! (not its output), rendered as 16 lowercase hex digits. Two tasks whose
//! specifications hash to the same key are interchangeable: whichever runs
//! first persists the artifact under `artifacts/<key>.json`, and the other
//! loads it instead of recomputing — the dedupe primitive behind shared
//! campaign prefixes (e.g. two sweep points needing the same trained
//! baseline).
//!
//! FNV-1a is not cryptographic; it defends against accidental collisions
//! in small campaign matrices, not adversarial ones. The input is expected
//! to be a canonical serialization (stable field order), which
//! `serde_json::to_string` of a struct provides.

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The content-addressed key for a specification: 16 lowercase hex digits
/// of [`fnv1a64`].
pub fn content_key(spec_bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(spec_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_spec_sensitive() {
        let a = content_key(b"train baseline seed=42");
        assert_eq!(a, content_key(b"train baseline seed=42"), "same spec, same key");
        assert_ne!(a, content_key(b"train baseline seed=43"), "different spec, different key");
        assert_eq!(a.len(), 16);
        assert!(a.bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    fn known_fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
