//! Atomic task claims: the cross-process mutual-exclusion primitive for
//! distributed campaign execution.
//!
//! A *claim file* marks one task as owned by one worker process. The
//! protocol uses only primitives that are atomic on POSIX filesystems, so
//! it needs no daemon, no lock server, and survives `kill -9` at any
//! instant:
//!
//! * **Acquire** ([`acquire_claim`]) — `O_CREAT|O_EXCL` creation of
//!   `claims/<task>.claim`. Exactly one of N racing workers wins; the
//!   file body records the owner (worker id, pid, task) as JSON.
//! * **Heartbeat** ([`refresh_claim`]) — the owner periodically rewrites
//!   the claim through [`write_atomic`], bumping the file's mtime. The
//!   mtime *is* the heartbeat timestamp: liveness needs no clock agreement
//!   between workers beyond the shared filesystem's.
//! * **Reclaim** ([`reclaim_stale`]) — a claim whose mtime is older than
//!   the TTL belongs to a dead worker (a live owner refreshes every
//!   TTL/4). Reclaiming *renames* the stale claim to a unique
//!   `.stale-<pid>-<seq>` sibling: rename is atomic, so of N racing
//!   reclaimers exactly one wins and the loser sees `NotFound`. The
//!   renamed file is kept as evidence of the death, quarantine-style.
//! * **Release** ([`release_claim`]) — the owner deletes the claim after
//!   persisting the task's result. A crash *between* result write and
//!   release leaves a claim for a finished task; scanners treat the result
//!   file as authoritative and garbage-collect the orphan claim.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

use crate::atomic::write_atomic;
use crate::crash::crash_point;
use crate::StoreError;

/// Uniquifies stale-claim rename targets within one process.
static STALE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Who owns a claim: persisted as the claim file's JSON body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClaimInfo {
    /// Stable worker identity (`MMWAVE_WORKER_ID` or host-pid derived).
    pub worker_id: String,
    /// The owning process id, for post-mortem correlation.
    pub pid: u32,
    /// The claimed task's id.
    pub task_id: String,
}

/// Outcome of an [`acquire_claim`] attempt.
#[derive(Debug)]
pub enum ClaimAttempt {
    /// This process now owns the claim.
    Acquired,
    /// Another claim already exists.
    Held {
        /// The recorded owner, when the claim body is readable. `None`
        /// for a claim torn by a crash between create and write — still
        /// a valid (aging) claim, just anonymous.
        owner: Option<ClaimInfo>,
        /// Time since the claim's last heartbeat (mtime).
        age: Duration,
    },
}

/// Tries to acquire `path` for `info` via `O_CREAT|O_EXCL`: exactly one of
/// N concurrent callers wins. Parent directories are created as needed.
///
/// # Errors
///
/// Returns an I/O [`StoreError`] for anything other than losing the race.
pub fn acquire_claim(path: &Path, info: &ClaimInfo) -> Result<ClaimAttempt, StoreError> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| StoreError::io(path, e))?;
    }
    crash_point("store.claim.pre_create");
    let created = std::fs::OpenOptions::new().write(true).create_new(true).open(path);
    let mut file = match created {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
            let (owner, age) = match read_claim(path) {
                Ok(Some((info, age))) => (Some(info), age),
                // Torn or vanished-while-reading claims still count as
                // held; the caller retries or waits out the TTL.
                _ => (None, Duration::ZERO),
            };
            return Ok(ClaimAttempt::Held { owner, age });
        }
        Err(e) => return Err(StoreError::io(path, e)),
    };
    let body = serde_json::to_vec(info).map_err(|e| StoreError::Schema {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    file.write_all(&body).map_err(|e| StoreError::io(path, e))?;
    file.sync_all().map_err(|e| StoreError::io(path, e))?;
    crash_point("store.claim.post_create");
    Ok(ClaimAttempt::Acquired)
}

/// Reads a claim's owner and age (time since last heartbeat). `None` if no
/// claim exists. A claim whose body is unreadable (crash between create
/// and write) reports an owner of `None` inside the tuple's place — the
/// caller sees `Ok(None)` only for a *missing* file; a torn body yields an
/// [`StoreError::CorruptPayload`]-free `Ok(Some)` with the age intact via
/// [`read_claim_age`]. Use [`read_claim_age`] when only liveness matters.
///
/// # Errors
///
/// Returns an I/O [`StoreError`] on metadata or read failures other than
/// `NotFound`.
pub fn read_claim(path: &Path) -> Result<Option<(ClaimInfo, Duration)>, StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io(path, e)),
    };
    let info = serde_json::from_slice::<ClaimInfo>(&bytes).map_err(|e| {
        StoreError::CorruptPayload {
            path: path.to_path_buf(),
            detail: format!("claim body is not valid JSON: {e}"),
            quarantined: None,
        }
    })?;
    let age = read_claim_age(path)?.unwrap_or(Duration::ZERO);
    Ok(Some((info, age)))
}

/// Time since the claim's last heartbeat (file mtime), or `None` if the
/// claim does not exist. A future mtime (clock skew) reads as zero age.
///
/// # Errors
///
/// Returns an I/O [`StoreError`] on metadata failures other than
/// `NotFound`.
pub fn read_claim_age(path: &Path) -> Result<Option<Duration>, StoreError> {
    let meta = match std::fs::metadata(path) {
        Ok(m) => m,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io(path, e)),
    };
    let modified = meta.modified().map_err(|e| StoreError::io(path, e))?;
    Ok(Some(SystemTime::now().duration_since(modified).unwrap_or(Duration::ZERO)))
}

/// Heartbeat: atomically rewrites the claim body, bumping its mtime so the
/// TTL clock restarts. Only the owner should call this; the rewrite goes
/// through the temp+fsync+rename path, so a reader never sees a torn body.
///
/// # Errors
///
/// Returns any I/O error from the atomic write.
pub fn refresh_claim(path: &Path, info: &ClaimInfo) -> std::io::Result<()> {
    let body = serde_json::to_vec(info)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    write_atomic(path, &body)
}

/// Releases a claim by deleting its file. Idempotent: a missing file (the
/// claim was reclaimed, or released twice) is success.
///
/// # Errors
///
/// Returns any I/O error other than `NotFound`.
pub fn release_claim(path: &Path) -> std::io::Result<()> {
    crash_point("store.claim.pre_release");
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// Takes a stale claim away from a dead worker. Returns the evidence path
/// if *this* caller won the reclaim; `Ok(None)` when the claim is missing,
/// still fresh (age ≤ `ttl`), or lost to a concurrent reclaimer.
///
/// The reclaim renames the claim to `<path>.stale-<pid>-<seq>`: atomic, so
/// one winner; preserved, so the dead worker's identity survives for the
/// recovery log.
///
/// # Errors
///
/// Returns an I/O [`StoreError`] on failures other than losing the race.
pub fn reclaim_stale(path: &Path, ttl: Duration) -> Result<Option<PathBuf>, StoreError> {
    match read_claim_age(path)? {
        None => return Ok(None),
        Some(age) if age <= ttl => return Ok(None),
        Some(_) => {}
    }
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(
        ".stale-{}-{}",
        std::process::id(),
        STALE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let evidence = PathBuf::from(name);
    crash_point("store.claim.pre_reclaim");
    match std::fs::rename(path, &evidence) {
        Ok(()) => {
            mmwave_telemetry::counter("store.claim_reclaimed", 1);
            mmwave_telemetry::warn!(
                "reclaimed stale claim {} (evidence at {})",
                path.display(),
                evidence.display()
            );
            Ok(Some(evidence))
        }
        // A concurrent reclaimer (or the resurrected owner's release) got
        // there first: not an error, just not our win.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(StoreError::io(path, e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mmwave-store-claim-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn info(task: &str) -> ClaimInfo {
        ClaimInfo {
            worker_id: "w0".to_string(),
            pid: std::process::id(),
            task_id: task.to_string(),
        }
    }

    #[test]
    fn second_acquire_loses_and_sees_the_owner() {
        let dir = temp_dir("race");
        let path = dir.join("claims/t1.claim");
        assert!(matches!(acquire_claim(&path, &info("t1")).unwrap(), ClaimAttempt::Acquired));
        match acquire_claim(&path, &info("t1")).unwrap() {
            ClaimAttempt::Held { owner, .. } => {
                assert_eq!(owner.unwrap().worker_id, "w0");
            }
            other => panic!("expected Held, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn release_frees_the_claim_and_is_idempotent() {
        let dir = temp_dir("release");
        let path = dir.join("t.claim");
        acquire_claim(&path, &info("t")).unwrap();
        release_claim(&path).unwrap();
        release_claim(&path).unwrap();
        assert!(matches!(acquire_claim(&path, &info("t")).unwrap(), ClaimAttempt::Acquired));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_claims_are_not_reclaimable_stale_ones_are() {
        let dir = temp_dir("stale");
        let path = dir.join("t.claim");
        acquire_claim(&path, &info("t")).unwrap();
        // Fresh: a generous TTL refuses the reclaim.
        assert!(reclaim_stale(&path, Duration::from_secs(3600)).unwrap().is_none());
        // Zero TTL makes any heartbeat age stale.
        std::thread::sleep(Duration::from_millis(30));
        let evidence = reclaim_stale(&path, Duration::ZERO).unwrap().expect("reclaim wins");
        assert!(evidence.exists(), "evidence file preserved");
        assert!(!path.exists(), "claim path freed");
        // The loser of the race sees NotFound -> Ok(None).
        assert!(reclaim_stale(&path, Duration::ZERO).unwrap().is_none());
        // And the task is claimable again.
        assert!(matches!(acquire_claim(&path, &info("t")).unwrap(), ClaimAttempt::Acquired));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn refresh_resets_the_heartbeat_age() {
        let dir = temp_dir("refresh");
        let path = dir.join("t.claim");
        acquire_claim(&path, &info("t")).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        let aged = read_claim_age(&path).unwrap().unwrap();
        assert!(aged >= Duration::from_millis(40), "age accumulates: {aged:?}");
        refresh_claim(&path, &info("t")).unwrap();
        let refreshed = read_claim_age(&path).unwrap().unwrap();
        assert!(refreshed < aged, "refresh must reset the mtime clock");
        // A refreshed claim survives a TTL that would have reclaimed it.
        assert!(reclaim_stale(&path, Duration::from_millis(40)).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_claim_body_reads_as_corrupt_but_age_still_works() {
        let dir = temp_dir("torn");
        let path = dir.join("t.claim");
        std::fs::write(&path, b"{half a claim").unwrap();
        assert!(matches!(
            read_claim(&path),
            Err(StoreError::CorruptPayload { .. })
        ));
        assert!(read_claim_age(&path).unwrap().is_some(), "liveness survives a torn body");
        // Acquire still reports Held (anonymous owner).
        match acquire_claim(&path, &info("t")).unwrap() {
            ClaimAttempt::Held { owner, .. } => assert!(owner.is_none()),
            other => panic!("expected Held, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_claim_reads_as_none() {
        let dir = temp_dir("missing");
        assert!(read_claim(&dir.join("absent.claim")).unwrap().is_none());
        assert!(read_claim_age(&dir.join("absent.claim")).unwrap().is_none());
        assert!(reclaim_stale(&dir.join("absent.claim"), Duration::ZERO).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
