//! Property-based tests for the Shapley estimators.

use mmwave_shap::{exact_shapley, top_k_indices, PermutationShap, SetFunction};
use proptest::prelude::*;

/// An additive game with arbitrary per-player weights.
struct Additive(Vec<f64>);
impl SetFunction for Additive {
    fn n_players(&self) -> usize {
        self.0.len()
    }
    fn evaluate(&self, c: &[bool]) -> f64 {
        self.0.iter().zip(c).filter(|(_, &p)| p).map(|(w, _)| w).sum()
    }
}

/// A submodular coverage-style game.
struct Threshold {
    weights: Vec<f64>,
    cap: f64,
}
impl SetFunction for Threshold {
    fn n_players(&self) -> usize {
        self.weights.len()
    }
    fn evaluate(&self, c: &[bool]) -> f64 {
        let s: f64 = self.weights.iter().zip(c).filter(|(_, &p)| p).map(|(w, _)| w).sum();
        s.min(self.cap)
    }
}

proptest! {
    #[test]
    fn additive_games_have_weight_shapley_values(
        weights in proptest::collection::vec(-3.0f64..3.0, 2..8)
    ) {
        let phi = exact_shapley(&Additive(weights.clone()));
        for (p, w) in phi.iter().zip(&weights) {
            prop_assert!((p - w).abs() < 1e-9);
        }
        // Sampling is exact for additive games, for any permutation count.
        let sampled = PermutationShap::new(3, 1).explain(&Additive(weights.clone()));
        for (p, w) in sampled.iter().zip(&weights) {
            prop_assert!((p - w).abs() < 1e-9);
        }
    }

    #[test]
    fn efficiency_holds_for_threshold_games(
        weights in proptest::collection::vec(0.0f64..2.0, 2..7),
        cap in 0.5f64..5.0,
    ) {
        let g = Threshold { weights, cap };
        let full = g.evaluate(&vec![true; g.n_players()]);
        let phi = exact_shapley(&g);
        prop_assert!((phi.iter().sum::<f64>() - full).abs() < 1e-9);
        let sampled = PermutationShap::new(8, 2).explain(&g);
        prop_assert!((sampled.iter().sum::<f64>() - full).abs() < 1e-9);
    }

    #[test]
    fn monotone_games_have_nonnegative_values(
        weights in proptest::collection::vec(0.0f64..2.0, 2..7),
        cap in 0.5f64..5.0,
    ) {
        let g = Threshold { weights, cap };
        for phi in exact_shapley(&g) {
            prop_assert!(phi >= -1e-12);
        }
    }

    #[test]
    fn top_k_returns_sorted_prefix(values in proptest::collection::vec(-10.0f64..10.0, 1..20), k_frac in 0.0f64..1.0) {
        let k = ((values.len() as f64) * k_frac) as usize;
        let top = top_k_indices(&values, k);
        prop_assert_eq!(top.len(), k);
        // Descending by value.
        for w in top.windows(2) {
            prop_assert!(values[w[0]] >= values[w[1]]);
        }
        // Everything outside the top-k is no larger than the smallest in it.
        if let Some(&last) = top.last() {
            for (i, &v) in values.iter().enumerate() {
                if !top.contains(&i) {
                    prop_assert!(v <= values[last] + 1e-12);
                }
            }
        }
    }
}
