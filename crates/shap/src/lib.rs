//! Shapley-value (SHAP) estimation for sequence models.
//!
//! The attack's first stage (Section V-A) asks: *which of the 32 frames
//! matter most to the classifier?* The paper answers with SHAP values
//! (Eq. (1)) over per-frame CNN features feeding the LSTM. This crate
//! provides the estimation machinery, model-agnostic behind the
//! [`SetFunction`] trait:
//!
//! * [`exact_shapley`] — the `O(2^M)` enumeration of Eq. (1), practical for
//!   `M <= ~20` and used to validate the sampler;
//! * [`PermutationShap`] — the standard unbiased permutation-sampling
//!   estimator with antithetic pairs, linear in the number of permutations;
//! * [`top_k_indices`] — frame selection from the resulting values.
//!
//! # Examples
//!
//! ```
//! use mmwave_shap::{exact_shapley, PermutationShap, SetFunction};
//!
//! /// A toy additive game: player i contributes i + 1.
//! struct Additive(usize);
//! impl SetFunction for Additive {
//!     fn n_players(&self) -> usize { self.0 }
//!     fn evaluate(&self, coalition: &[bool]) -> f64 {
//!         coalition.iter().enumerate()
//!             .filter(|(_, &p)| p)
//!             .map(|(i, _)| (i + 1) as f64)
//!             .sum()
//!     }
//! }
//!
//! let game = Additive(4);
//! let exact = exact_shapley(&game);
//! assert!((exact[2] - 3.0).abs() < 1e-12);
//! let sampled = PermutationShap::new(64, 7).explain(&game);
//! for (e, s) in exact.iter().zip(&sampled) {
//!     assert!((e - s).abs() < 1e-9); // additive games are exact under sampling
//! }
//! ```

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A cooperative game over `M` players — for the attack, "players" are the
/// frames of an activity sample and `evaluate` runs the surrogate LSTM with
/// absent frames replaced by a baseline.
///
/// Implementations should be deterministic: the estimators may call
/// `evaluate` with the same coalition more than once.
pub trait SetFunction {
    /// Number of players `M`.
    fn n_players(&self) -> usize;

    /// Value of a coalition. `coalition[i]` is true when player `i` is
    /// present. Length is always `n_players()`.
    fn evaluate(&self, coalition: &[bool]) -> f64;
}

/// Exact Shapley values by full enumeration of Eq. (1).
///
/// Cost is `O(2^M * M)` evaluations — fine for unit tests and small games,
/// prohibitive at `M = 32` (use [`PermutationShap`] there).
///
/// # Panics
///
/// Panics if `M == 0` or `M > 24`.
pub fn exact_shapley<F: SetFunction + ?Sized>(f: &F) -> Vec<f64> {
    let m = f.n_players();
    assert!(m > 0, "game needs at least one player");
    assert!(m <= 24, "exact enumeration infeasible beyond 24 players");
    // Precompute weights w(s) = s! (M - s - 1)! / M! for coalition size s.
    let ln_fact: Vec<f64> = {
        let mut v = vec![0.0f64; m + 1];
        for i in 1..=m {
            v[i] = v[i - 1] + (i as f64).ln();
        }
        v
    };
    let weight = |s: usize| (ln_fact[s] + ln_fact[m - s - 1] - ln_fact[m]).exp();
    // Cache all coalition values.
    let n_sets = 1usize << m;
    let mut values = vec![0.0f64; n_sets];
    let mut coalition = vec![false; m];
    for (mask, value) in values.iter_mut().enumerate() {
        for (i, c) in coalition.iter_mut().enumerate() {
            *c = (mask >> i) & 1 == 1;
        }
        *value = f.evaluate(&coalition);
    }
    let mut phi = vec![0.0f64; m];
    for (i, phi_i) in phi.iter_mut().enumerate() {
        let bit = 1usize << i;
        for mask in 0..n_sets {
            if mask & bit != 0 {
                continue;
            }
            let s = mask.count_ones() as usize;
            *phi_i += weight(s) * (values[mask | bit] - values[mask]);
        }
    }
    phi
}

/// Permutation-sampling Shapley estimator (Castro et al.): for each random
/// permutation, players enter one at a time and credit their marginal
/// contribution. Each permutation is paired with its reverse (antithetic
/// sampling), which cancels a large share of the variance.
///
/// The estimator is unbiased and — like the exact values — satisfies the
/// efficiency axiom for every sample: contributions along one permutation
/// telescope to `f(full) - f(empty)`.
#[derive(Debug, Clone)]
pub struct PermutationShap {
    n_permutations: usize,
    seed: u64,
}

impl PermutationShap {
    /// Creates an estimator using `n_permutations` permutation pairs.
    ///
    /// # Panics
    ///
    /// Panics if `n_permutations == 0`.
    pub fn new(n_permutations: usize, seed: u64) -> PermutationShap {
        assert!(n_permutations > 0, "need at least one permutation");
        PermutationShap { n_permutations, seed }
    }

    /// Number of permutation pairs sampled.
    pub fn n_permutations(&self) -> usize {
        self.n_permutations
    }

    /// Estimates Shapley values for the game.
    ///
    /// Cost: `2 * n_permutations * M` evaluations of `f`. Walks run in
    /// parallel on the `mmwave-exec` pool; the permutations themselves are
    /// drawn serially from the seeded RNG up front and the per-walk
    /// contributions are folded in walk order, so the estimate is
    /// byte-identical to a serial run for any `MMWAVE_WORKERS`.
    pub fn explain<F: SetFunction + Sync + ?Sized>(&self, f: &F) -> Vec<f64> {
        let m = f.n_players();
        assert!(m > 0, "game needs at least one player");
        let _span = mmwave_telemetry::span("shap_explain");
        // Pre-draw every walk order exactly as the serial loop would:
        // each shuffle permutes the previous order in place, followed by
        // its antithetic reverse.
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..m).collect();
        let mut walks: Vec<Vec<usize>> = Vec::with_capacity(2 * self.n_permutations);
        for _ in 0..self.n_permutations {
            order.shuffle(&mut rng);
            walks.push(order.clone());
            walks.push(order.iter().rev().copied().collect());
        }
        // Each walk touches every player exactly once, so summing the
        // per-walk contribution vectors in walk order reproduces the
        // serial accumulation bit for bit.
        let contributions =
            mmwave_exec::par_map(&walks, |_, walk| self.walk_contributions(f, walk));
        let total_passes = walks.len();
        let mut phi = vec![0.0f64; m];
        for contribution in &contributions {
            for (p, c) in phi.iter_mut().zip(contribution) {
                *p += c;
            }
        }
        for p in &mut phi {
            *p /= total_passes as f64;
        }
        // Each walk evaluates the empty coalition plus one set per player.
        mmwave_telemetry::counter("shap.evaluations", (total_passes * (m + 1)) as u64);
        phi
    }

    fn walk_contributions<F: SetFunction + ?Sized>(&self, f: &F, order: &[usize]) -> Vec<f64> {
        let m = order.len();
        let mut phi = vec![0.0f64; m];
        let mut coalition = vec![false; m];
        let mut prev = f.evaluate(&coalition);
        for &player in order {
            coalition[player] = true;
            let cur = f.evaluate(&coalition);
            phi[player] = cur - prev;
            prev = cur;
        }
        phi
    }
}

/// Indices of the `k` largest values (by signed value), sorted by
/// decreasing value. For frame selection the paper keeps the frames with
/// the largest positive impact on the predicted class.
///
/// # Panics
///
/// Panics if `k > values.len()`.
pub fn top_k_indices(values: &[f64], k: usize) -> Vec<usize> {
    assert!(k <= values.len(), "k exceeds the number of values");
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[b].total_cmp(&values[a]));
    idx.truncate(k);
    idx
}

/// Index of the single most important player.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn argmax(values: &[f64]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    top_k_indices(values, 1)[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Weighted majority game: coalition wins (value 1) if its total weight
    /// exceeds half. A classic non-additive test game.
    struct Majority {
        weights: Vec<f64>,
    }

    impl SetFunction for Majority {
        fn n_players(&self) -> usize {
            self.weights.len()
        }
        fn evaluate(&self, coalition: &[bool]) -> f64 {
            let total: f64 = self.weights.iter().sum();
            let have: f64 = self
                .weights
                .iter()
                .zip(coalition)
                .filter(|(_, &c)| c)
                .map(|(w, _)| w)
                .sum();
            if have > total / 2.0 {
                1.0
            } else {
                0.0
            }
        }
    }

    /// Game with an interaction term: v(S) = sum of members + bonus if both
    /// player 0 and 1 are present.
    struct Interaction;
    impl SetFunction for Interaction {
        fn n_players(&self) -> usize {
            4
        }
        fn evaluate(&self, c: &[bool]) -> f64 {
            let base: f64 = c.iter().enumerate().filter(|(_, &p)| p).map(|(i, _)| i as f64).sum();
            base + if c[0] && c[1] { 10.0 } else { 0.0 }
        }
    }

    fn full_value<F: SetFunction>(f: &F) -> f64 {
        f.evaluate(&vec![true; f.n_players()]) - f.evaluate(&vec![false; f.n_players()])
    }

    #[test]
    fn efficiency_axiom_exact() {
        let g = Majority { weights: vec![3.0, 2.0, 2.0, 1.0] };
        let phi = exact_shapley(&g);
        assert!((phi.iter().sum::<f64>() - full_value(&g)).abs() < 1e-12);
    }

    #[test]
    fn symmetry_axiom_exact() {
        // Players 1 and 2 have equal weights: equal Shapley values.
        let g = Majority { weights: vec![3.0, 2.0, 2.0, 1.0] };
        let phi = exact_shapley(&g);
        assert!((phi[1] - phi[2]).abs() < 1e-12);
    }

    #[test]
    fn dummy_player_gets_zero() {
        // A zero-weight player never changes the outcome.
        let g = Majority { weights: vec![3.0, 2.0, 2.0, 0.0] };
        let phi = exact_shapley(&g);
        assert!(phi[3].abs() < 1e-12);
    }

    #[test]
    fn interaction_is_split_evenly() {
        let phi = exact_shapley(&Interaction);
        // The 10-point synergy splits evenly between players 0 and 1.
        assert!((phi[0] - 5.0).abs() < 1e-9, "phi0 = {}", phi[0]);
        assert!((phi[1] - 6.0).abs() < 1e-9, "phi1 = {}", phi[1]); // 1 + 5
        assert!((phi[2] - 2.0).abs() < 1e-9);
        assert!((phi[3] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn sampler_converges_to_exact() {
        let g = Majority { weights: vec![4.0, 3.0, 2.0, 2.0, 1.0] };
        let exact = exact_shapley(&g);
        let sampled = PermutationShap::new(2000, 13).explain(&g);
        for (i, (e, s)) in exact.iter().zip(&sampled).enumerate() {
            assert!((e - s).abs() < 0.03, "player {i}: exact {e} vs sampled {s}");
        }
    }

    #[test]
    fn sampler_satisfies_efficiency_exactly() {
        let g = Interaction;
        let phi = PermutationShap::new(3, 5).explain(&g);
        assert!((phi.iter().sum::<f64>() - full_value(&g)).abs() < 1e-9);
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let g = Majority { weights: vec![2.0, 1.0, 1.0] };
        let a = PermutationShap::new(10, 42).explain(&g);
        let b = PermutationShap::new(10, 42).explain(&g);
        assert_eq!(a, b);
        let c = PermutationShap::new(10, 43).explain(&g);
        assert_ne!(a, c);
    }

    #[test]
    fn top_k_selects_largest() {
        let values = [0.1, -0.5, 2.0, 1.5, 0.0];
        assert_eq!(top_k_indices(&values, 2), vec![2, 3]);
        assert_eq!(argmax(&values), 2);
        assert_eq!(top_k_indices(&values, 5).len(), 5);
    }

    #[test]
    #[should_panic(expected = "k exceeds")]
    fn top_k_too_large_panics() {
        top_k_indices(&[1.0], 2);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn exact_refuses_huge_games() {
        struct Big;
        impl SetFunction for Big {
            fn n_players(&self) -> usize {
                32
            }
            fn evaluate(&self, _: &[bool]) -> f64 {
                0.0
            }
        }
        exact_shapley(&Big);
    }
}
