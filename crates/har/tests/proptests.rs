//! Property-based tests for the HAR prototype components.

use mmwave_body::Activity;
use mmwave_dsp::heatmap::{Heatmap, HeatmapKind};
use mmwave_dsp::HeatmapSeq;
use mmwave_har::dataset::{Dataset, LabeledSample};
use mmwave_har::eval::ConfusionMatrix;
use mmwave_har::{CnnLstm, PrototypeConfig};
use mmwave_radar::Placement;
use proptest::prelude::*;

fn sample_with_label(label: Activity, fill: f32, n_frames: usize) -> LabeledSample {
    let cfg = PrototypeConfig::fast();
    LabeledSample {
        heatmaps: HeatmapSeq::new(vec![
            Heatmap::from_data(
                cfg.heatmap_rows,
                cfg.heatmap_cols,
                HeatmapKind::RangeAngle,
                vec![fill; cfg.heatmap_rows * cfg.heatmap_cols],
            );
            n_frames
        ]),
        label,
        placement: Placement::new(1.2, 0.0),
        participant: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn stratified_split_partitions_every_class(
        per_class in 2usize..8,
        frac in 0.2f64..0.8,
        seed in 0u64..100,
    ) {
        let mut data = Dataset::new();
        for act in Activity::ALL {
            for k in 0..per_class {
                data.samples.push(sample_with_label(act, k as f32 * 0.1, 4));
            }
        }
        let (train, test) = data.split_stratified(frac, seed);
        prop_assert_eq!(train.len() + test.len(), data.len());
        let expected_test = ((per_class as f64) * frac).round() as usize;
        for act in Activity::ALL {
            prop_assert_eq!(test.of_class(act).len(), expected_test);
        }
    }

    #[test]
    fn model_probabilities_are_valid_for_any_input(fill in 0.0f32..2.0, seed in 0u64..20) {
        let cfg = PrototypeConfig::smoke_test();
        let model = CnnLstm::new(&cfg, seed);
        let s = {
            let mut s = sample_with_label(Activity::Push, fill, cfg.n_frames);
            s.heatmaps.frame_mut(0);
            s
        };
        let p = model.probabilities(&s.heatmaps);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|v| v.is_finite()));
        prop_assert!(model.predict(&s.heatmaps) < 6);
    }

    #[test]
    fn confusion_matrix_accuracy_matches_counts(
        records in proptest::collection::vec((0usize..6, 0usize..6), 1..60)
    ) {
        let mut cm = ConfusionMatrix::new();
        let mut correct = 0usize;
        for &(t, p) in &records {
            cm.record(Activity::from_index(t), Activity::from_index(p));
            if t == p {
                correct += 1;
            }
        }
        prop_assert_eq!(cm.total(), records.len());
        prop_assert_eq!(cm.correct(), correct);
        prop_assert!((cm.accuracy() - correct as f64 / records.len() as f64).abs() < 1e-12);
    }
}
