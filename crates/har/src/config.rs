//! Prototype configuration and scale knobs.

use mmwave_radar::capture::CaptureConfig;
use serde::{Deserialize, Serialize};

/// Configuration of the HAR prototype: radar capture plus classifier
/// architecture.
///
/// The paper's prototype uses 32 frames per activity, large DRAI heatmaps,
/// and a GPU-sized CNN-LSTM; the `fast()` profile keeps the 32-frame
/// structure (it matters for the SHAP analysis of Fig. 3) but shrinks
/// spatial dimensions and widths so each training run takes seconds on one
/// CPU core. Environment variables scale experiments up:
///
/// * `MMWAVE_BENCH_REPS` — experiment repetitions (paper: 30; default 1);
/// * `MMWAVE_BENCH_SCALE` — multiplies dataset sizes (default 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrototypeConfig {
    /// Capture pipeline settings (radar + DSP).
    #[serde(skip, default)]
    pub capture: CaptureConfigHolder,
    /// Frames per activity sample (32 in the paper).
    pub n_frames: usize,
    /// Heatmap rows (range bins).
    pub heatmap_rows: usize,
    /// Heatmap columns (angle bins).
    pub heatmap_cols: usize,
    /// First conv layer output channels.
    pub conv1_channels: usize,
    /// Second conv layer output channels.
    pub conv2_channels: usize,
    /// CNN feature dimension (dense output per frame).
    pub feature_dim: usize,
    /// LSTM hidden dimension.
    pub lstm_hidden: usize,
    /// Number of activity classes.
    pub n_classes: usize,
}

/// Wrapper so `PrototypeConfig` stays serde-friendly while carrying the
/// non-serializable capture config.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CaptureConfigHolder(pub CaptureConfig);

impl PrototypeConfig {
    /// The laptop-scale profile used across tests and benches.
    pub fn fast() -> PrototypeConfig {
        let capture = CaptureConfig::fast();
        PrototypeConfig {
            n_frames: 32,
            heatmap_rows: capture.processing.n_range_bins,
            heatmap_cols: capture.processing.n_angle_bins,
            conv1_channels: 4,
            conv2_channels: 8,
            feature_dim: 32,
            lstm_hidden: 32,
            n_classes: 6,
            capture: CaptureConfigHolder(capture),
        }
    }

    /// A minimal profile for unit tests (8 frames, tiny dataset budgets).
    pub fn smoke_test() -> PrototypeConfig {
        PrototypeConfig { n_frames: 8, ..PrototypeConfig::fast() }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistent field.
    pub fn validate(&self) -> Result<(), String> {
        let c = &self.capture.0;
        if self.heatmap_rows != c.processing.n_range_bins {
            return Err("heatmap_rows must match the processing config".into());
        }
        if self.heatmap_cols != c.processing.n_angle_bins {
            return Err("heatmap_cols must match the processing config".into());
        }
        if self.heatmap_rows % 4 != 0 || self.heatmap_cols % 4 != 0 {
            return Err("heatmap dims must be divisible by 4 (two 2x2 pools)".into());
        }
        if self.n_frames == 0 || self.n_classes == 0 {
            return Err("frame and class counts must be nonzero".into());
        }
        Ok(())
    }

    /// CNN flat feature size after two conv+pool stages.
    pub fn cnn_flat_dim(&self) -> usize {
        self.conv2_channels * (self.heatmap_rows / 4) * (self.heatmap_cols / 4)
    }

    /// Experiment repetitions from `MMWAVE_BENCH_REPS` (default 1 so the
    /// full benchmark suite fits a single-core time budget; the paper
    /// averages 30 — set `MMWAVE_BENCH_REPS=30` to match).
    pub fn bench_repetitions() -> usize {
        std::env::var("MMWAVE_BENCH_REPS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    }

    /// Dataset scale multiplier from `MMWAVE_BENCH_SCALE` (default 1).
    pub fn bench_scale() -> usize {
        std::env::var("MMWAVE_BENCH_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    }
}

impl Default for PrototypeConfig {
    fn default() -> Self {
        PrototypeConfig::fast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_profile_is_consistent() {
        PrototypeConfig::fast().validate().unwrap();
        assert_eq!(PrototypeConfig::fast().n_frames, 32, "paper uses 32 frames");
    }

    #[test]
    fn flat_dim_matches_two_pools() {
        let c = PrototypeConfig::fast();
        assert_eq!(c.cnn_flat_dim(), c.conv2_channels * (16 / 4) * (16 / 4));
    }

    #[test]
    fn validation_catches_mismatches() {
        let mut c = PrototypeConfig::fast();
        c.heatmap_rows = 99;
        assert!(c.validate().is_err());
    }

    #[test]
    fn env_knobs_have_sane_defaults() {
        // Do not set the env vars here (tests run in one process); just
        // check the defaults parse path.
        assert!(PrototypeConfig::bench_repetitions() >= 1);
        assert!(PrototypeConfig::bench_scale() >= 1);
    }
}
