//! Training loop for the CNN-LSTM: typed errors, divergence recovery, and
//! epoch-granularity checkpointing.
//!
//! The paper's campaigns need many 70-epoch runs; a single NaN or a killed
//! process must not throw a campaign away. The trainer therefore
//!
//! * surfaces failures as [`TrainError`] instead of panicking (the
//!   panicking [`Trainer::fit`] wrapper remains for benches and examples),
//! * watches every sample loss and the pre-clip gradient norm for
//!   non-finite values and, when one appears, rolls the model and optimizer
//!   back to the last epoch boundary, backs the learning rate off, reseeds
//!   the shuffle, and retries (bounded by
//!   [`TrainerConfig::max_recovery_attempts`]),
//! * optionally checkpoints after every epoch via
//!   [`Trainer::try_fit_resumable`], so a killed run resumes from disk and
//!   finishes with results identical to an uninterrupted run.

use crate::dataset::Dataset;
use crate::model::CnnLstm;
use mmwave_nn::param::clip_global_norm;
use mmwave_nn::{try_softmax_cross_entropy, Adam, LossError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Why training failed.
#[derive(Debug)]
pub enum TrainError {
    /// The training set holds no samples.
    EmptyDataset,
    /// The trainer configuration (or a resume against an incompatible
    /// checkpoint) is invalid.
    InvalidConfig(String),
    /// Loss or gradients went non-finite and every recovery attempt was
    /// exhausted.
    NonFinite {
        /// Epoch that kept diverging.
        epoch: usize,
        /// Rollback-and-reseed attempts consumed.
        attempts: usize,
    },
    /// Reading or writing the checkpoint failed.
    Io(std::io::Error),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::EmptyDataset => write!(f, "cannot train on an empty dataset"),
            TrainError::InvalidConfig(msg) => write!(f, "invalid trainer config: {msg}"),
            TrainError::NonFinite { epoch, attempts } => write!(
                f,
                "non-finite loss or gradient at epoch {epoch} after {attempts} recovery attempts"
            ),
            TrainError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TrainError {
    fn from(e: std::io::Error) -> Self {
        TrainError::Io(e)
    }
}

fn default_max_recovery_attempts() -> usize {
    3
}

fn default_lr_backoff() -> f32 {
    0.5
}

/// Hyperparameters for [`Trainer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Samples per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Global gradient-norm clip.
    pub clip_norm: f32,
    /// Shuffle seed.
    pub seed: u64,
    /// Bounded rollback-and-reseed retries after a non-finite loss or
    /// gradient before training gives up with [`TrainError::NonFinite`].
    #[serde(default = "default_max_recovery_attempts")]
    pub max_recovery_attempts: usize,
    /// Learning-rate multiplier applied on each recovery retry; must lie
    /// in `(0, 1]`.
    #[serde(default = "default_lr_backoff")]
    pub lr_backoff: f32,
}

impl TrainerConfig {
    /// Defaults tuned for the fast prototype profile.
    pub fn fast() -> TrainerConfig {
        TrainerConfig {
            epochs: 12,
            batch_size: 8,
            learning_rate: 2e-3,
            clip_norm: 5.0,
            seed: 0,
            max_recovery_attempts: default_max_recovery_attempts(),
            lr_backoff: default_lr_backoff(),
        }
    }
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig::fast()
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Mean cross-entropy over the epoch.
    pub loss: f64,
    /// Training accuracy over the epoch.
    pub accuracy: f64,
}

/// On-disk state written after every completed epoch by
/// [`Trainer::try_fit_resumable`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FitCheckpoint {
    /// Configuration the run was started with.
    pub config: TrainerConfig,
    /// Next epoch to run (equals the number of completed epochs).
    pub next_epoch: usize,
    /// Recovery attempts consumed so far.
    pub attempts: usize,
    /// Model weights at the epoch boundary.
    pub model: CnnLstm,
    /// Optimizer state at the epoch boundary.
    pub optimizer: Adam,
    /// Statistics of the completed epochs.
    pub stats: Vec<EpochStats>,
}

/// How many epoch checkpoints a resumable fit retains: if the newest is
/// torn or corrupt it is quarantined and the next-older one resumes the
/// run (re-doing at most this many epochs).
pub const CHECKPOINT_KEEP: usize = 3;

/// The pre-envelope single checkpoint file inside a fit directory; still
/// read (in compatibility mode) when no numbered checkpoint exists.
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("trainer_checkpoint.json")
}

/// The rotating checkpoint set a resumable fit keeps inside `dir`:
/// `trainer_checkpoint.<epoch>.json`, newest [`CHECKPOINT_KEEP`] retained.
pub fn checkpoint_set(dir: &Path) -> mmwave_store::CheckpointSet {
    mmwave_store::CheckpointSet::new(dir, "trainer_checkpoint", CHECKPOINT_KEEP)
}

/// A hook that may perturb the per-sample loss the trainer observes; used
/// by the robustness harness to force divergence deterministically. The
/// arguments are `(epoch, recovery_attempt, loss)`.
pub type LossFaultHook = fn(usize, usize, f32) -> f32;

/// Minibatch trainer with Adam, gradient clipping, divergence recovery,
/// and optional epoch checkpointing.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainerConfig,
    loss_fault: Option<LossFaultHook>,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; see [`Trainer::try_new`].
    pub fn new(config: TrainerConfig) -> Trainer {
        Trainer::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a trainer, rejecting invalid configurations.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidConfig`] if epochs or batch size is
    /// zero, the learning rate is not positive and finite, or the backoff
    /// factor lies outside `(0, 1]`.
    pub fn try_new(config: TrainerConfig) -> Result<Trainer, TrainError> {
        if config.epochs == 0 {
            return Err(TrainError::InvalidConfig("need at least one epoch".into()));
        }
        if config.batch_size == 0 {
            return Err(TrainError::InvalidConfig("batch size must be nonzero".into()));
        }
        if !(config.learning_rate.is_finite() && config.learning_rate > 0.0) {
            return Err(TrainError::InvalidConfig(
                "learning rate must be positive and finite".into(),
            ));
        }
        if !(config.lr_backoff > 0.0 && config.lr_backoff <= 1.0) {
            return Err(TrainError::InvalidConfig("lr backoff must be in (0, 1]".into()));
        }
        Ok(Trainer { config, loss_fault: None })
    }

    /// Installs a loss fault-injection hook for robustness tests: the hook
    /// sees `(epoch, recovery_attempt, loss)` and returns the loss the
    /// trainer should believe. Returning NaN exercises the
    /// rollback-and-reseed recovery path end to end.
    pub fn with_loss_fault(mut self, hook: LossFaultHook) -> Trainer {
        self.loss_fault = Some(hook);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Trains `model` on `data`, returning per-epoch statistics.
    ///
    /// # Panics
    ///
    /// Panics if training fails; see [`Trainer::try_fit`] for the fallible
    /// variant.
    pub fn fit(&self, model: &mut CnnLstm, data: &Dataset) -> Vec<EpochStats> {
        self.try_fit(model, data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Trains `model` on `data`, returning per-epoch statistics.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::EmptyDataset`] for an empty training set and
    /// [`TrainError::NonFinite`] when divergence recovery is exhausted.
    pub fn try_fit(&self, model: &mut CnnLstm, data: &Dataset) -> Result<Vec<EpochStats>, TrainError> {
        self.run(model, data, None)
    }

    /// Trains like [`Trainer::try_fit`] but checkpoints to
    /// `checkpoint_dir` after every epoch and, if a checkpoint is already
    /// present there, resumes from it instead of starting over. Thanks to
    /// per-epoch shuffle seeding the resumed run is bit-identical to an
    /// uninterrupted one. The checkpoint is left in place on completion so
    /// re-running a finished fit is a cheap no-op.
    ///
    /// # Errors
    ///
    /// Everything [`Trainer::try_fit`] returns, plus [`TrainError::Io`]
    /// for checkpoint I/O failures and [`TrainError::InvalidConfig`] when
    /// the on-disk checkpoint was written with an incompatible
    /// configuration (anything but `epochs` must match).
    pub fn try_fit_resumable(
        &self,
        model: &mut CnnLstm,
        data: &Dataset,
        checkpoint_dir: &Path,
    ) -> Result<Vec<EpochStats>, TrainError> {
        self.run(model, data, Some(checkpoint_dir))
    }

    fn run(
        &self,
        model: &mut CnnLstm,
        data: &Dataset,
        checkpoint_dir: Option<&Path>,
    ) -> Result<Vec<EpochStats>, TrainError> {
        if data.is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        let _span = mmwave_telemetry::span_at("train_fit", mmwave_telemetry::Level::Debug);
        let ckpt = checkpoint_dir.map(checkpoint_set);
        let mut adam = Adam::new(self.config.learning_rate);
        let mut attempts = 0usize;
        let mut stats: Vec<EpochStats> = Vec::with_capacity(self.config.epochs);
        let mut epoch = 0usize;
        if let Some(set) = ckpt.as_ref() {
            // A torn or corrupt newest checkpoint is quarantined by the
            // store layer and the next-older one loads instead, re-doing
            // at most CHECKPOINT_KEEP epochs.
            if let Some(loaded) =
                set.load_latest::<FitCheckpoint>().map_err(|e| TrainError::Io(e.into_io()))?
            {
                let saved = loaded.value;
                self.check_resume_compatible(&saved.config)?;
                if saved.next_epoch > self.config.epochs {
                    return Err(TrainError::InvalidConfig(format!(
                        "checkpoint already holds {} epochs but the trainer wants {}",
                        saved.next_epoch, self.config.epochs
                    )));
                }
                *model = saved.model;
                adam = saved.optimizer;
                attempts = saved.attempts;
                stats = saved.stats;
                epoch = saved.next_epoch;
            }
        }
        while epoch < self.config.epochs {
            let snapshot_model = model.clone();
            let snapshot_adam = adam.clone();
            match self.run_epoch(model, &mut adam, data, epoch, attempts) {
                Some(epoch_stats) => {
                    stats.push(epoch_stats);
                    epoch += 1;
                    if let Some(set) = ckpt.as_ref() {
                        mmwave_store::crash_point("har.checkpoint.pre_save");
                        set.save(
                            epoch as u64,
                            &FitCheckpoint {
                                config: self.config,
                                next_epoch: epoch,
                                attempts,
                                model: model.clone(),
                                optimizer: adam.clone(),
                                stats: stats.clone(),
                            },
                        )
                        .map_err(|e| TrainError::Io(e.into_io()))?;
                    }
                }
                None => {
                    // Divergence: roll back to the epoch boundary, back the
                    // learning rate off, and retry with a reseeded shuffle.
                    attempts += 1;
                    mmwave_telemetry::counter("train.recoveries", 1);
                    if mmwave_telemetry::enabled(mmwave_telemetry::Level::Warn) {
                        let mut fields = serde_json::Map::new();
                        fields.insert("epoch".to_string(), serde_json::Value::from(epoch as u64));
                        fields
                            .insert("attempt".to_string(), serde_json::Value::from(attempts as u64));
                        fields.insert(
                            "exhausted".to_string(),
                            serde_json::Value::from(attempts > self.config.max_recovery_attempts),
                        );
                        mmwave_telemetry::event(
                            mmwave_telemetry::Level::Warn,
                            mmwave_telemetry::EventKind::Fault,
                            "train.recovery",
                            fields,
                        );
                    }
                    if attempts > self.config.max_recovery_attempts {
                        return Err(TrainError::NonFinite {
                            epoch,
                            attempts: self.config.max_recovery_attempts,
                        });
                    }
                    *model = snapshot_model;
                    adam = snapshot_adam;
                    adam.lr *= self.config.lr_backoff;
                }
            }
        }
        Ok(stats)
    }

    /// Runs one epoch, or returns `None` if a non-finite loss or gradient
    /// norm was observed (the caller rolls back and retries).
    fn run_epoch(
        &self,
        model: &mut CnnLstm,
        adam: &mut Adam,
        data: &Dataset,
        epoch: usize,
        attempt: usize,
    ) -> Option<EpochStats> {
        let mut rng =
            ChaCha8Rng::seed_from_u64(epoch_shuffle_seed(self.config.seed, epoch, attempt));
        let mut order: Vec<usize> = (0..data.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut epoch_loss = 0.0f64;
        let mut correct = 0usize;
        for batch in order.chunks(self.config.batch_size) {
            model.zero_grads();
            // Forward passes are read-only on the model and independent
            // per sample, so they fan out over workers; losses and the
            // backward/gradient accumulation below stay serial in batch
            // order, which keeps the epoch byte-identical to a serial run
            // for any worker count.
            let caches = {
                let forward_model: &CnnLstm = model;
                mmwave_exec::par_map(batch, |_, &si| {
                    forward_model.forward(&data.samples[si].heatmaps)
                })
            };
            for (&si, cache) in batch.iter().zip(&caches) {
                let sample = &data.samples[si];
                let target = sample.label.index();
                let (mut loss, dlogits) = match try_softmax_cross_entropy(&cache.logits, target) {
                    Ok(out) => out,
                    Err(LossError::NonFiniteLogit { .. }) => return None,
                    // Empty logits / bad target are programming errors, not
                    // transient divergence — keep the historical panic.
                    Err(e) => panic!("{e}"),
                };
                if let Some(hook) = self.loss_fault {
                    loss = hook(epoch, attempt, loss);
                }
                if !loss.is_finite() {
                    return None;
                }
                epoch_loss += loss as f64;
                if argmax(&cache.logits) == Some(target) {
                    correct += 1;
                }
                // Scale so the step uses the batch mean gradient.
                let scale = 1.0 / batch.len() as f32;
                let dlogits: Vec<f32> = dlogits.iter().map(|g| g * scale).collect();
                model.backward(cache, &dlogits);
            }
            let grad_norm = clip_global_norm(&mut model.param_tensors(), self.config.clip_norm);
            if !grad_norm.is_finite() {
                return None;
            }
            mmwave_telemetry::observe("train.grad_norm", grad_norm as f64);
            adam.step(&mut model.param_tensors());
        }
        let epoch_stats = EpochStats {
            loss: epoch_loss / data.len() as f64,
            accuracy: correct as f64 / data.len() as f64,
        };
        mmwave_telemetry::counter("train.epochs", 1);
        if mmwave_telemetry::enabled(mmwave_telemetry::Level::Debug) {
            let mut fields = serde_json::Map::new();
            fields.insert("epoch".to_string(), serde_json::Value::from(epoch as u64));
            fields.insert("attempt".to_string(), serde_json::Value::from(attempt as u64));
            fields.insert("loss".to_string(), serde_json::Value::from(epoch_stats.loss));
            fields.insert("accuracy".to_string(), serde_json::Value::from(epoch_stats.accuracy));
            fields.insert("lr".to_string(), serde_json::Value::from(f64::from(adam.lr)));
            mmwave_telemetry::event(
                mmwave_telemetry::Level::Debug,
                mmwave_telemetry::EventKind::Metric,
                "train.epoch",
                fields,
            );
        }
        Some(epoch_stats)
    }

    fn check_resume_compatible(&self, saved: &TrainerConfig) -> Result<(), TrainError> {
        let mine = &self.config;
        let compatible = saved.batch_size == mine.batch_size
            && saved.learning_rate == mine.learning_rate
            && saved.clip_norm == mine.clip_norm
            && saved.seed == mine.seed
            && saved.max_recovery_attempts == mine.max_recovery_attempts
            && saved.lr_backoff == mine.lr_backoff;
        if compatible {
            Ok(())
        } else {
            Err(TrainError::InvalidConfig(
                "checkpoint was written with a different trainer config (only epochs may change)"
                    .into(),
            ))
        }
    }
}

/// Deterministic shuffle seed for one `(epoch, recovery attempt)` pair.
/// Deriving it from the base seed alone — never from run history — is what
/// makes a resumed run identical to an uninterrupted one.
fn epoch_shuffle_seed(seed: u64, epoch: usize, attempt: usize) -> u64 {
    seed ^ (epoch as u64)
        .wrapping_add(1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (attempt as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

fn argmax(xs: &[f32]) -> Option<usize> {
    xs.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrototypeConfig;
    use crate::dataset::LabeledSample;
    use mmwave_body::Activity;
    use mmwave_dsp::heatmap::{Heatmap, HeatmapKind};
    use mmwave_dsp::HeatmapSeq;
    use mmwave_radar::Placement;

    /// A synthetic, trivially-separable dataset: class k has a bright blob
    /// at row k in every frame.
    fn synthetic_dataset(cfg: &PrototypeConfig, per_class: usize, n_classes: usize) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut samples = Vec::new();
        for k in 0..n_classes {
            for _ in 0..per_class {
                let frames = (0..cfg.n_frames)
                    .map(|_| {
                        let mut hm =
                            Heatmap::zeros(cfg.heatmap_rows, cfg.heatmap_cols, HeatmapKind::RangeAngle);
                        for c in 0..cfg.heatmap_cols {
                            *hm.get_mut(2 * k + 1, c) = 0.8 + rng.gen_range(0.0..0.2);
                        }
                        // Background speckle.
                        for _ in 0..10 {
                            let r = rng.gen_range(0..cfg.heatmap_rows);
                            let c = rng.gen_range(0..cfg.heatmap_cols);
                            *hm.get_mut(r, c) += rng.gen_range(0.0..0.3);
                        }
                        hm
                    })
                    .collect();
                samples.push(LabeledSample {
                    heatmaps: HeatmapSeq::new(frames),
                    label: Activity::from_index(k),
                    placement: Placement::new(1.2, 0.0),
                    participant: 0,
                });
            }
        }
        Dataset { samples }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mmwave_trainer_{tag}_{}", std::process::id()))
    }

    #[test]
    fn learns_a_separable_problem() {
        let cfg = PrototypeConfig::smoke_test();
        let data = synthetic_dataset(&cfg, 6, 4);
        let mut model = CnnLstm::new(&cfg, 1);
        let trainer = Trainer::new(TrainerConfig { epochs: 15, ..TrainerConfig::fast() });
        let stats = trainer.fit(&mut model, &data);
        let last = stats.last().unwrap();
        assert!(
            last.accuracy > 0.9,
            "final training accuracy {:.2} too low; loss {:.3}",
            last.accuracy,
            last.loss
        );
        // Loss decreased overall.
        assert!(last.loss < stats[0].loss);
    }

    #[test]
    fn training_is_deterministic() {
        let cfg = PrototypeConfig::smoke_test();
        let data = synthetic_dataset(&cfg, 2, 3);
        let t = Trainer::new(TrainerConfig { epochs: 2, ..TrainerConfig::fast() });
        let mut m1 = CnnLstm::new(&cfg, 7);
        let mut m2 = CnnLstm::new(&cfg, 7);
        let s1 = t.fit(&mut m1, &data);
        let s2 = t.fit(&mut m2, &data);
        assert_eq!(m1, m2);
        assert_eq!(s1, s2);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let cfg = PrototypeConfig::smoke_test();
        let mut model = CnnLstm::new(&cfg, 0);
        Trainer::new(TrainerConfig::fast()).fit(&mut model, &Dataset::new());
    }

    #[test]
    fn empty_dataset_is_a_typed_error() {
        let cfg = PrototypeConfig::smoke_test();
        let mut model = CnnLstm::new(&cfg, 0);
        let err = Trainer::new(TrainerConfig::fast())
            .try_fit(&mut model, &Dataset::new())
            .unwrap_err();
        assert!(matches!(err, TrainError::EmptyDataset));
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_panics() {
        Trainer::new(TrainerConfig { epochs: 0, ..TrainerConfig::fast() });
    }

    #[test]
    fn bad_configs_are_typed_errors() {
        let zero_batch = TrainerConfig { batch_size: 0, ..TrainerConfig::fast() };
        assert!(matches!(Trainer::try_new(zero_batch), Err(TrainError::InvalidConfig(_))));
        let nan_lr = TrainerConfig { learning_rate: f32::NAN, ..TrainerConfig::fast() };
        assert!(matches!(Trainer::try_new(nan_lr), Err(TrainError::InvalidConfig(_))));
        let bad_backoff = TrainerConfig { lr_backoff: 0.0, ..TrainerConfig::fast() };
        assert!(matches!(Trainer::try_new(bad_backoff), Err(TrainError::InvalidConfig(_))));
    }

    #[test]
    fn nan_loss_triggers_rollback_and_run_completes() {
        let cfg = PrototypeConfig::smoke_test();
        let data = synthetic_dataset(&cfg, 2, 3);
        // NaN exactly once: at epoch 1 on the first (untried) attempt.
        let trainer = Trainer::new(TrainerConfig { epochs: 3, ..TrainerConfig::fast() })
            .with_loss_fault(|epoch, attempt, loss| {
                if epoch == 1 && attempt == 0 {
                    f32::NAN
                } else {
                    loss
                }
            });
        let mut model = CnnLstm::new(&cfg, 5);
        let stats = trainer.try_fit(&mut model, &data).expect("recovery must succeed");
        assert_eq!(stats.len(), 3, "all epochs must complete despite the injected NaN");
        assert!(stats.iter().all(|s| s.loss.is_finite()));
    }

    #[test]
    fn persistent_nan_exhausts_recovery() {
        let cfg = PrototypeConfig::smoke_test();
        let data = synthetic_dataset(&cfg, 1, 2);
        let trainer = Trainer::new(TrainerConfig { epochs: 2, ..TrainerConfig::fast() })
            .with_loss_fault(|_, _, _| f32::NAN);
        let mut model = CnnLstm::new(&cfg, 5);
        let err = trainer.try_fit(&mut model, &data).unwrap_err();
        match err {
            TrainError::NonFinite { epoch, attempts } => {
                assert_eq!(epoch, 0);
                assert_eq!(attempts, TrainerConfig::fast().max_recovery_attempts);
            }
            other => panic!("expected NonFinite, got {other}"),
        }
    }

    #[test]
    fn resumable_fit_matches_uninterrupted_run() {
        let cfg = PrototypeConfig::smoke_test();
        let data = synthetic_dataset(&cfg, 2, 2);
        let full = TrainerConfig { epochs: 4, ..TrainerConfig::fast() };

        let mut reference = CnnLstm::new(&cfg, 9);
        let reference_stats = Trainer::new(full).fit(&mut reference, &data);

        let dir = temp_dir("resume");
        let _ = std::fs::remove_dir_all(&dir);
        let mut resumed = CnnLstm::new(&cfg, 9);
        let half = TrainerConfig { epochs: 2, ..full };
        Trainer::new(half).try_fit_resumable(&mut resumed, &data, &dir).unwrap();
        // "Kill" the process: a fresh model and trainer resume from disk.
        let mut resumed = CnnLstm::new(&cfg, 9);
        let stats = Trainer::new(full).try_fit_resumable(&mut resumed, &data, &dir).unwrap();

        assert_eq!(resumed, reference);
        assert_eq!(stats, reference_stats);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_and_matches_reference() {
        let cfg = PrototypeConfig::smoke_test();
        let data = synthetic_dataset(&cfg, 2, 2);
        let full = TrainerConfig { epochs: 4, ..TrainerConfig::fast() };

        let mut reference = CnnLstm::new(&cfg, 11);
        let reference_stats = Trainer::new(full).fit(&mut reference, &data);

        let dir = temp_dir("ckpt_fallback");
        let _ = std::fs::remove_dir_all(&dir);
        let mut partial = CnnLstm::new(&cfg, 11);
        let three = TrainerConfig { epochs: 3, ..full };
        Trainer::new(three).try_fit_resumable(&mut partial, &data, &dir).unwrap();

        // Tear the newest checkpoint (epoch 3) in half.
        let set = checkpoint_set(&dir);
        let newest = set.path_for(3);
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

        // Resume falls back to the epoch-2 checkpoint, re-runs epochs 2-3,
        // and still matches the uninterrupted reference bit for bit.
        let mut resumed = CnnLstm::new(&cfg, 11);
        let stats = Trainer::new(full).try_fit_resumable(&mut resumed, &data, &dir).unwrap();
        assert_eq!(resumed, reference);
        assert_eq!(stats, reference_stats);
        assert!(!newest.exists(), "torn checkpoint must be quarantined");
        let quarantined = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().contains(".quarantine-"));
        assert!(quarantined, "torn checkpoint bytes must be preserved");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_single_file_checkpoint_resumes_in_compat_mode() {
        let cfg = PrototypeConfig::smoke_test();
        let data = synthetic_dataset(&cfg, 2, 2);
        let full = TrainerConfig { epochs: 4, ..TrainerConfig::fast() };

        let mut reference = CnnLstm::new(&cfg, 13);
        let reference_stats = Trainer::new(full).fit(&mut reference, &data);

        let dir = temp_dir("ckpt_legacy");
        let _ = std::fs::remove_dir_all(&dir);
        let mut partial = CnnLstm::new(&cfg, 13);
        let half = TrainerConfig { epochs: 2, ..full };
        Trainer::new(half).try_fit_resumable(&mut partial, &data, &dir).unwrap();

        // Rewrite the state as a pre-envelope run would have left it: one
        // bare-JSON trainer_checkpoint.json and no numbered files.
        let set = checkpoint_set(&dir);
        let saved = set.load_latest::<FitCheckpoint>().unwrap().unwrap().value;
        set.clear();
        std::fs::write(checkpoint_path(&dir), serde_json::to_string(&saved).unwrap()).unwrap();

        let mut resumed = CnnLstm::new(&cfg, 13);
        let stats = Trainer::new(full).try_fit_resumable(&mut resumed, &data, &dir).unwrap();
        assert_eq!(resumed, reference);
        assert_eq!(stats, reference_stats);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_incompatible_checkpoint() {
        let cfg = PrototypeConfig::smoke_test();
        let data = synthetic_dataset(&cfg, 1, 2);
        let dir = temp_dir("incompat");
        let _ = std::fs::remove_dir_all(&dir);
        let mut model = CnnLstm::new(&cfg, 3);
        let first = TrainerConfig { epochs: 1, ..TrainerConfig::fast() };
        Trainer::new(first).try_fit_resumable(&mut model, &data, &dir).unwrap();

        let different_seed = TrainerConfig { epochs: 2, seed: 99, ..TrainerConfig::fast() };
        let err = Trainer::new(different_seed)
            .try_fit_resumable(&mut model, &data, &dir)
            .unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
