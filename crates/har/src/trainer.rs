//! Training loop for the CNN-LSTM.

use crate::dataset::Dataset;
use crate::model::CnnLstm;
use mmwave_nn::param::clip_global_norm;
use mmwave_nn::{softmax_cross_entropy, Adam};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters for [`Trainer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Samples per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Global gradient-norm clip.
    pub clip_norm: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl TrainerConfig {
    /// Defaults tuned for the fast prototype profile.
    pub fn fast() -> TrainerConfig {
        TrainerConfig {
            epochs: 12,
            batch_size: 8,
            learning_rate: 2e-3,
            clip_norm: 5.0,
            seed: 0,
        }
    }
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig::fast()
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Mean cross-entropy over the epoch.
    pub loss: f64,
    /// Training accuracy over the epoch.
    pub accuracy: f64,
}

/// Minibatch trainer with Adam and gradient clipping.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if epochs or batch size is zero.
    pub fn new(config: TrainerConfig) -> Trainer {
        assert!(config.epochs > 0, "need at least one epoch");
        assert!(config.batch_size > 0, "batch size must be nonzero");
        Trainer { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Trains `model` on `data`, returning per-epoch statistics.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(&self, model: &mut CnnLstm, data: &Dataset) -> Vec<EpochStats> {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let mut adam = Adam::new(self.config.learning_rate);
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut stats = Vec::with_capacity(self.config.epochs);
        for _epoch in 0..self.config.epochs {
            // Shuffle.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut epoch_loss = 0.0f64;
            let mut correct = 0usize;
            for batch in order.chunks(self.config.batch_size) {
                model.zero_grads();
                for &si in batch {
                    let sample = &data.samples[si];
                    let cache = model.forward(&sample.heatmaps);
                    let target = sample.label.index();
                    let (loss, dlogits) = softmax_cross_entropy(&cache.logits, target);
                    epoch_loss += loss as f64;
                    let pred = cache
                        .logits
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(i, _)| i)
                        .expect("nonempty logits");
                    if pred == target {
                        correct += 1;
                    }
                    // Scale so the step uses the batch mean gradient.
                    let scale = 1.0 / batch.len() as f32;
                    let dlogits: Vec<f32> = dlogits.iter().map(|g| g * scale).collect();
                    model.backward(&cache, &dlogits);
                }
                clip_global_norm(&mut model.param_tensors(), self.config.clip_norm);
                adam.step(&mut model.param_tensors());
            }
            stats.push(EpochStats {
                loss: epoch_loss / data.len() as f64,
                accuracy: correct as f64 / data.len() as f64,
            });
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrototypeConfig;
    use crate::dataset::LabeledSample;
    use mmwave_body::Activity;
    use mmwave_dsp::heatmap::{Heatmap, HeatmapKind};
    use mmwave_dsp::HeatmapSeq;
    use mmwave_radar::Placement;

    /// A synthetic, trivially-separable dataset: class k has a bright blob
    /// at row k in every frame.
    fn synthetic_dataset(cfg: &PrototypeConfig, per_class: usize, n_classes: usize) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut samples = Vec::new();
        for k in 0..n_classes {
            for _ in 0..per_class {
                let frames = (0..cfg.n_frames)
                    .map(|_| {
                        let mut hm =
                            Heatmap::zeros(cfg.heatmap_rows, cfg.heatmap_cols, HeatmapKind::RangeAngle);
                        for c in 0..cfg.heatmap_cols {
                            *hm.get_mut(2 * k + 1, c) = 0.8 + rng.gen_range(0.0..0.2);
                        }
                        // Background speckle.
                        for _ in 0..10 {
                            let r = rng.gen_range(0..cfg.heatmap_rows);
                            let c = rng.gen_range(0..cfg.heatmap_cols);
                            *hm.get_mut(r, c) += rng.gen_range(0.0..0.3);
                        }
                        hm
                    })
                    .collect();
                samples.push(LabeledSample {
                    heatmaps: HeatmapSeq::new(frames),
                    label: Activity::from_index(k),
                    placement: Placement::new(1.2, 0.0),
                    participant: 0,
                });
            }
        }
        Dataset { samples }
    }

    #[test]
    fn learns_a_separable_problem() {
        let cfg = PrototypeConfig::smoke_test();
        let data = synthetic_dataset(&cfg, 6, 4);
        let mut model = CnnLstm::new(&cfg, 1);
        let trainer = Trainer::new(TrainerConfig { epochs: 15, ..TrainerConfig::fast() });
        let stats = trainer.fit(&mut model, &data);
        let last = stats.last().unwrap();
        assert!(
            last.accuracy > 0.9,
            "final training accuracy {:.2} too low; loss {:.3}",
            last.accuracy,
            last.loss
        );
        // Loss decreased overall.
        assert!(last.loss < stats[0].loss);
    }

    #[test]
    fn training_is_deterministic() {
        let cfg = PrototypeConfig::smoke_test();
        let data = synthetic_dataset(&cfg, 2, 3);
        let t = Trainer::new(TrainerConfig { epochs: 2, ..TrainerConfig::fast() });
        let mut m1 = CnnLstm::new(&cfg, 7);
        let mut m2 = CnnLstm::new(&cfg, 7);
        let s1 = t.fit(&mut m1, &data);
        let s2 = t.fit(&mut m2, &data);
        assert_eq!(m1, m2);
        assert_eq!(s1, s2);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let cfg = PrototypeConfig::smoke_test();
        let mut model = CnnLstm::new(&cfg, 0);
        Trainer::new(TrainerConfig::fast()).fit(&mut model, &Dataset::new());
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_panics() {
        Trainer::new(TrainerConfig { epochs: 0, ..TrainerConfig::fast() });
    }
}
