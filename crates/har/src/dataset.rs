//! Dataset generation over the experiment grid.

use crate::config::PrototypeConfig;
use mmwave_body::{Activity, ActivitySampler, Participant, SampleVariation};
use mmwave_dsp::HeatmapSeq;
use mmwave_radar::capture::TriggerPlan;
use mmwave_radar::scene::EnvironmentKind;
use mmwave_radar::{Capturer, Environment, Placement};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One labeled activity sample.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledSample {
    /// The DRAI heatmap sequence the classifier sees.
    pub heatmaps: HeatmapSeq,
    /// Ground-truth activity.
    pub label: Activity,
    /// Where the user stood.
    pub placement: Placement,
    /// Which participant performed it (index into the participant presets).
    pub participant: usize,
}

/// A set of labeled samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// The samples.
    pub samples: Vec<LabeledSample>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples of one class.
    pub fn of_class(&self, label: Activity) -> Vec<&LabeledSample> {
        self.samples.iter().filter(|s| s.label == label).collect()
    }

    /// Merges another dataset into this one.
    pub fn extend_from(&mut self, other: Dataset) {
        self.samples.extend(other.samples);
    }

    /// Stratified train/test split: `test_fraction` of each class goes to
    /// the test set. Deterministic for a fixed seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < test_fraction < 1`.
    pub fn split_stratified(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test fraction must be in (0, 1)"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for act in Activity::ALL {
            let mut class: Vec<&LabeledSample> = self.of_class(act);
            // Fisher-Yates on the class subset.
            for i in (1..class.len()).rev() {
                class.swap(i, rng.gen_range(0..=i));
            }
            let n_test = ((class.len() as f64) * test_fraction).round() as usize;
            for (i, s) in class.into_iter().enumerate() {
                if i < n_test {
                    test.samples.push(s.clone());
                } else {
                    train.samples.push(s.clone());
                }
            }
        }
        (train, test)
    }

    /// Class histogram, indexed by [`Activity::index`].
    pub fn class_counts(&self) -> [usize; 6] {
        let mut counts = [0usize; 6];
        for s in &self.samples {
            counts[s.label.index()] += 1;
        }
        counts
    }
}

impl FromIterator<LabeledSample> for Dataset {
    fn from_iter<T: IntoIterator<Item = LabeledSample>>(iter: T) -> Self {
        Dataset { samples: iter.into_iter().collect() }
    }
}

/// What to generate: the cross product of placements, activities,
/// participants, and repetitions, in a given environment.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// User positions.
    pub placements: Vec<Placement>,
    /// Activities to record.
    pub activities: Vec<Activity>,
    /// Participants (defaults to the three presets).
    pub participants: Vec<Participant>,
    /// Repetitions of each (placement, activity, participant) cell.
    pub repetitions: usize,
    /// Which room.
    pub environment: EnvironmentKind,
}

impl DatasetSpec {
    /// The paper's full training spec scaled to the compute budget:
    /// 12 positions x 6 activities x 3 participants x `repetitions`.
    pub fn training(repetitions: usize) -> DatasetSpec {
        DatasetSpec {
            placements: Placement::training_grid(),
            activities: Activity::ALL.to_vec(),
            participants: Participant::presets().to_vec(),
            repetitions,
            environment: EnvironmentKind::TrainingHallway,
        }
    }

    /// A minimal spec for unit tests: 2 positions, 2 activities,
    /// 1 participant, 1 repetition.
    pub fn smoke_test() -> DatasetSpec {
        DatasetSpec {
            placements: vec![Placement::new(1.2, 0.0), Placement::new(1.6, 30.0)],
            activities: vec![Activity::Push, Activity::LeftSwipe],
            participants: vec![Participant::average()],
            repetitions: 1,
            environment: EnvironmentKind::TrainingHallway,
        }
    }

    /// Total number of samples the spec will produce.
    pub fn total_samples(&self) -> usize {
        self.placements.len() * self.activities.len() * self.participants.len() * self.repetitions
    }
}

/// A paired capture for the attacker: the same performance with and without
/// the trigger, used both to poison training frames and as attack test
/// samples.
#[derive(Debug, Clone, PartialEq)]
pub struct PairedSample {
    /// Without the trigger.
    pub clean: HeatmapSeq,
    /// With the trigger (same pose and noise).
    pub triggered: HeatmapSeq,
    /// The activity actually performed.
    pub label: Activity,
    /// Where the attacker stood.
    pub placement: Placement,
}

/// Generates datasets by driving the body sampler and the radar capture
/// pipeline.
#[derive(Debug)]
pub struct DatasetGenerator {
    config: PrototypeConfig,
    capturer: Capturer,
}

impl DatasetGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: PrototypeConfig) -> DatasetGenerator {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid prototype config: {e}"));
        let capturer = Capturer::new(config.capture.0.clone());
        DatasetGenerator { config, capturer }
    }

    /// The prototype configuration.
    pub fn config(&self) -> &PrototypeConfig {
        &self.config
    }

    /// The underlying capturer (shared with the attack pipeline).
    pub fn capturer(&self) -> &Capturer {
        &self.capturer
    }

    /// Generates the dataset described by `spec`. Deterministic per seed
    /// and per worker count: the per-sample random draws (micro-motion
    /// variation and capture seed) come from one sequential RNG stream, so
    /// they are hoisted into a serial prologue — in exactly the order the
    /// historical serial loop drew them — and only the expensive captures
    /// fan out over the `mmwave-exec` pool, collected in grid order.
    pub fn generate(&self, spec: &DatasetSpec, seed: u64) -> Dataset {
        let env = spec.environment.build();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        struct SampleJob {
            pi: usize,
            participant: Participant,
            placement: Placement,
            activity: Activity,
            variation: SampleVariation,
            capture_seed: u64,
        }
        let mut jobs = Vec::with_capacity(spec.total_samples());
        for (pi, participant) in spec.participants.iter().enumerate() {
            for &placement in &spec.placements {
                for &activity in &spec.activities {
                    for _rep in 0..spec.repetitions {
                        let variation = SampleVariation::random(&mut rng);
                        let capture_seed: u64 = rng.gen();
                        jobs.push(SampleJob {
                            pi,
                            participant: *participant,
                            placement,
                            activity,
                            variation,
                            capture_seed,
                        });
                    }
                }
            }
        }
        let samples = mmwave_exec::par_map(&jobs, |_, job| {
            let sampler = ActivitySampler::new(
                job.participant,
                self.config.n_frames,
                self.capturer.config().frame_rate,
            );
            let seq = sampler.sample(job.activity, &job.variation);
            let out = self.capturer.capture_with_scale(
                &seq,
                job.placement,
                &env,
                None,
                job.capture_seed,
                job.participant.reflectivity,
            );
            LabeledSample {
                heatmaps: out.clean,
                label: job.activity,
                placement: job.placement,
                participant: job.pi,
            }
        });
        Dataset { samples }
    }

    /// Generates paired clean/triggered captures of `activity` performed by
    /// `participant` at each placement, `repetitions` times — the
    /// attacker's own recordings (they wear the trigger; Eq. (3) linearity
    /// gives us the clean twin for free).
    #[allow(clippy::too_many_arguments)]
    pub fn generate_paired(
        &self,
        activity: Activity,
        placements: &[Placement],
        participant: Participant,
        plan: &TriggerPlan,
        environment: &Environment,
        repetitions: usize,
        seed: u64,
    ) -> Vec<PairedSample> {
        let sampler = ActivitySampler::new(
            participant,
            self.config.n_frames,
            self.capturer.config().frame_rate,
        );
        // Same structure as [`generate`]: sequential RNG draws first (in
        // historical order), parallel captures after, results in grid
        // order — byte-identical for any worker count.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut jobs = Vec::with_capacity(placements.len() * repetitions);
        for &placement in placements {
            for _ in 0..repetitions {
                let variation = SampleVariation::random(&mut rng);
                let capture_seed: u64 = rng.gen();
                jobs.push((placement, variation, capture_seed));
            }
        }
        mmwave_exec::par_map(&jobs, |_, (placement, variation, capture_seed)| {
            let seq = sampler.sample(activity, variation);
            let cap = self.capturer.capture_with_scale(
                &seq,
                *placement,
                environment,
                Some(plan),
                *capture_seed,
                participant.reflectivity,
            );
            PairedSample {
                clean: cap.clean,
                triggered: cap.triggered.expect("trigger requested"),
                label: activity,
                placement: *placement,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_body::SiteId;
    use mmwave_radar::trigger::{Trigger, TriggerAttachment};

    fn generator() -> DatasetGenerator {
        DatasetGenerator::new(PrototypeConfig::smoke_test())
    }

    #[test]
    fn generate_produces_spec_counts() {
        let gen = generator();
        let spec = DatasetSpec::smoke_test();
        let data = gen.generate(&spec, 1);
        assert_eq!(data.len(), spec.total_samples());
        assert_eq!(data.samples[0].heatmaps.len(), gen.config().n_frames);
        // Both classes present.
        assert!(!data.of_class(Activity::Push).is_empty());
        assert!(!data.of_class(Activity::LeftSwipe).is_empty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = generator();
        let spec = DatasetSpec::smoke_test();
        let a = gen.generate(&spec, 5);
        let b = gen.generate(&spec, 5);
        assert_eq!(a, b);
        let c = gen.generate(&spec, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn stratified_split_keeps_class_balance() {
        let gen = generator();
        let mut spec = DatasetSpec::smoke_test();
        spec.repetitions = 4;
        let data = gen.generate(&spec, 2);
        let (train, test) = data.split_stratified(0.25, 3);
        assert_eq!(train.len() + test.len(), data.len());
        let (tc, vc) = (train.class_counts(), test.class_counts());
        // Both classes appear in both splits.
        assert!(tc[Activity::Push.index()] > 0 && vc[Activity::Push.index()] > 0);
        assert!(tc[Activity::LeftSwipe.index()] > 0 && vc[Activity::LeftSwipe.index()] > 0);
    }

    #[test]
    fn paired_samples_share_shape_and_differ_in_content() {
        let gen = generator();
        let plan = TriggerPlan {
            attachment: TriggerAttachment::new(Trigger::aluminum_2x2()),
            site: SiteId::RightForearm,
        };
        let pairs = gen.generate_paired(
            Activity::Push,
            &[Placement::new(1.2, 0.0)],
            Participant::average(),
            &plan,
            &Environment::classroom(),
            2,
            9,
        );
        assert_eq!(pairs.len(), 2);
        for p in &pairs {
            assert_eq!(p.clean.len(), p.triggered.len());
            assert!(p.clean.mean_l2_distance(&p.triggered) > 0.0);
        }
        // Different repetitions differ (random variation).
        assert_ne!(pairs[0].clean, pairs[1].clean);
    }

    #[test]
    fn training_spec_matches_paper_grid() {
        let spec = DatasetSpec::training(2);
        assert_eq!(spec.placements.len(), 12);
        assert_eq!(spec.activities.len(), 6);
        assert_eq!(spec.participants.len(), 3);
        assert_eq!(spec.total_samples(), 12 * 6 * 3 * 2);
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn bad_split_fraction_panics() {
        Dataset::new().split_stratified(1.5, 0);
    }
}
