//! The mmWave HAR prototype: dataset generation, the CNN-LSTM classifier,
//! training, and evaluation (Section II-A and VI-B of the paper).
//!
//! This crate assembles the substrates into the victim system:
//!
//! * [`config`] — one place for every scale knob (heatmap size, network
//!   widths, dataset sizes), with environment-variable overrides for
//!   larger-than-default benchmark runs;
//! * [`dataset`] — generates labeled DRAI samples over the 12-position
//!   grid with three participants, in either experiment environment, and
//!   (for the attacker) paired clean/triggered captures;
//! * [`model`] — the hybrid [`model::CnnLstm`]: per-frame CNN features,
//!   LSTM over the 32-frame series, fully-connected classification head;
//! * [`trainer`] — Adam training loop with gradient clipping, typed
//!   errors, non-finite-loss recovery, and epoch checkpoint/resume;
//! * [`eval`] — accuracy and the 6x6 confusion matrix (Fig. 7).
//!
//! # Examples
//!
//! ```no_run
//! use mmwave_har::config::PrototypeConfig;
//! use mmwave_har::dataset::{DatasetGenerator, DatasetSpec};
//! use mmwave_har::model::CnnLstm;
//! use mmwave_har::trainer::{Trainer, TrainerConfig};
//!
//! let cfg = PrototypeConfig::fast();
//! let gen = DatasetGenerator::new(cfg.clone());
//! let data = gen.generate(&DatasetSpec::smoke_test(), 42);
//! let (train, test) = data.split_stratified(0.25, 7);
//! let mut model = CnnLstm::new(&cfg, 3);
//! Trainer::new(TrainerConfig::fast()).fit(&mut model, &train);
//! let eval = mmwave_har::eval::evaluate(&model, &test);
//! println!("accuracy {:.1}%", eval.accuracy * 100.0);
//! ```

pub mod config;
pub mod dataset;
pub mod eval;
pub mod model;
pub mod trainer;

pub use config::PrototypeConfig;
pub use dataset::{Dataset, DatasetGenerator, DatasetSpec, LabeledSample};
pub use eval::{evaluate, ConfusionMatrix, EvalResult};
pub use model::CnnLstm;
pub use trainer::{EpochStats, FitCheckpoint, TrainError, Trainer, TrainerConfig};
