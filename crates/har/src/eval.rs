//! Evaluation: accuracy and the confusion matrix of Fig. 7.

use crate::dataset::Dataset;
use crate::model::CnnLstm;
use mmwave_body::Activity;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 6x6 confusion matrix over the activity classes
/// (`matrix[true][predicted]`).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: [[usize; 6]; 6],
}

impl ConfusionMatrix {
    /// An empty matrix.
    pub fn new() -> ConfusionMatrix {
        ConfusionMatrix::default()
    }

    /// Records one prediction.
    pub fn record(&mut self, truth: Activity, predicted: Activity) {
        self.counts[truth.index()][predicted.index()] += 1;
    }

    /// Count at `(true, predicted)`.
    pub fn get(&self, truth: Activity, predicted: Activity) -> usize {
        self.counts[truth.index()][predicted.index()]
    }

    /// Total number of recorded predictions.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Number of correct predictions (trace).
    pub fn correct(&self) -> usize {
        (0..6).map(|i| self.counts[i][i]).sum()
    }

    /// Overall accuracy, or 0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.correct() as f64 / self.total() as f64
        }
    }

    /// Per-class recall, indexed by [`Activity::index`].
    pub fn per_class_recall(&self) -> [f64; 6] {
        let mut out = [0.0; 6];
        for (i, row) in self.counts.iter().enumerate() {
            let total: usize = row.iter().sum();
            if total > 0 {
                out[i] = row[i] as f64 / total as f64;
            }
        }
        out
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>14}", "true \\ pred")?;
        for a in Activity::ALL {
            write!(f, "{:>14}", a.label())?;
        }
        writeln!(f)?;
        for (i, row) in self.counts.iter().enumerate() {
            write!(f, "{:>14}", Activity::from_index(i).label())?;
            for &v in row {
                write!(f, "{v:>14}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Result of evaluating a model on a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// Overall accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Full confusion matrix.
    pub confusion: ConfusionMatrix,
}

/// Evaluates `model` on every sample of `data`.
pub fn evaluate(model: &CnnLstm, data: &Dataset) -> EvalResult {
    let mut confusion = ConfusionMatrix::new();
    for sample in &data.samples {
        let pred = Activity::from_index(model.predict(&sample.heatmaps));
        confusion.record(sample.label, pred);
    }
    EvalResult { accuracy: confusion.accuracy(), confusion }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_of_perfect_predictions() {
        let mut cm = ConfusionMatrix::new();
        for a in Activity::ALL {
            for _ in 0..5 {
                cm.record(a, a);
            }
        }
        assert_eq!(cm.total(), 30);
        assert_eq!(cm.correct(), 30);
        assert!((cm.accuracy() - 1.0).abs() < 1e-12);
        assert!(cm.per_class_recall().iter().all(|&r| (r - 1.0).abs() < 1e-12));
    }

    #[test]
    fn misclassification_lands_off_diagonal() {
        let mut cm = ConfusionMatrix::new();
        cm.record(Activity::Push, Activity::Pull);
        cm.record(Activity::Push, Activity::Push);
        assert_eq!(cm.get(Activity::Push, Activity::Pull), 1);
        assert!((cm.accuracy() - 0.5).abs() < 1e-12);
        let recall = cm.per_class_recall();
        assert!((recall[Activity::Push.index()] - 0.5).abs() < 1e-12);
        assert_eq!(recall[Activity::Pull.index()], 0.0, "no Pull samples yet");
    }

    #[test]
    fn empty_matrix_is_harmless() {
        let cm = ConfusionMatrix::new();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    fn display_contains_all_labels() {
        let cm = ConfusionMatrix::new();
        let s = cm.to_string();
        for a in Activity::ALL {
            assert!(s.contains(a.label()), "missing {}", a.label());
        }
    }
}
