//! The hybrid CNN-LSTM activity classifier.

use crate::config::PrototypeConfig;
use mmwave_dsp::{Heatmap, HeatmapSeq};
use mmwave_nn::{relu, relu_backward, softmax, Conv2d, Dense, Lstm, LstmCache, MaxPool2, ParamTensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The prototype classifier (Section II-A): a per-frame CNN feature
/// extractor, an LSTM over the frame-feature series, and a fully-connected
/// head.
///
/// ```text
/// frame (1 x R x A) -> conv -> relu -> pool -> conv -> relu -> pool
///                   -> dense -> relu  = 32-d feature
/// 32 features ------> LSTM ----------> last hidden -> dense -> 6 logits
/// ```
///
/// The model intentionally exposes its internals to the attack crate: the
/// CNN feature path ([`CnnLstm::frame_features`]) and the LSTM-only path
/// ([`CnnLstm::logits_from_features`]) are exactly what SHAP frame scoring
/// and the Eq. (2) position optimizer probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CnnLstm {
    rows: usize,
    cols: usize,
    conv1: Conv2d,
    conv2: Conv2d,
    pool: MaxPool2,
    feat: Dense,
    lstm: Lstm,
    head: Dense,
}

/// CNN cache for one frame.
#[derive(Debug, Clone)]
struct FrameCache {
    input: Vec<f32>,
    a1: Vec<f32>,
    i1: Vec<u32>,
    p1: Vec<f32>,
    a2: Vec<f32>,
    i2: Vec<u32>,
    p2: Vec<f32>,
    f_pre: Vec<f32>,
}

/// Full forward cache for one sample.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    frames: Vec<FrameCache>,
    lstm: LstmCache,
    /// Per-frame CNN features (LSTM inputs).
    pub features: Vec<Vec<f32>>,
    /// Class logits.
    pub logits: Vec<f32>,
}

impl CnnLstm {
    /// Creates a model with seeded initialization.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(cfg: &PrototypeConfig, seed: u64) -> CnnLstm {
        cfg.validate().unwrap_or_else(|e| panic!("invalid prototype config: {e}"));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        CnnLstm {
            rows: cfg.heatmap_rows,
            cols: cfg.heatmap_cols,
            conv1: Conv2d::new(1, cfg.conv1_channels, 3, 1, &mut rng),
            conv2: Conv2d::new(cfg.conv1_channels, cfg.conv2_channels, 3, 1, &mut rng),
            pool: MaxPool2,
            feat: Dense::new(cfg.cnn_flat_dim(), cfg.feature_dim, &mut rng),
            lstm: Lstm::new(cfg.feature_dim, cfg.lstm_hidden, &mut rng),
            head: Dense::new(cfg.lstm_hidden, cfg.n_classes, &mut rng),
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.head.n_out()
    }

    /// CNN feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.feat.n_out()
    }

    /// Total number of learnable parameters.
    pub fn n_parameters(&self) -> usize {
        let mut model = self.clone();
        model.param_tensors().iter().map(|t| t.len()).sum()
    }

    fn frame_forward(&self, hm: &Heatmap) -> (Vec<f32>, FrameCache) {
        assert_eq!(
            (hm.rows(), hm.cols()),
            (self.rows, self.cols),
            "heatmap shape mismatch"
        );
        let input = hm.as_slice().to_vec();
        let a1 = self.conv1.forward(&input, self.rows, self.cols);
        let r1 = relu(&a1);
        let (p1, i1) = self
            .pool
            .forward(&r1, self.conv1.out_channels(), self.rows, self.cols);
        let (h2, w2) = (self.rows / 2, self.cols / 2);
        let a2 = self.conv2.forward(&p1, h2, w2);
        let r2 = relu(&a2);
        let (p2, i2) = self.pool.forward(&r2, self.conv2.out_channels(), h2, w2);
        let f_pre = self.feat.forward(&p2);
        let f = relu(&f_pre);
        (f, FrameCache { input, a1, i1, p1, a2, i2, p2, f_pre })
    }

    /// CNN features of a single frame (the `l_theta(h(...))` of Eq. (2)).
    pub fn frame_features(&self, hm: &Heatmap) -> Vec<f32> {
        self.frame_forward(hm).0
    }

    /// Full forward pass with caches for backpropagation.
    ///
    /// # Panics
    ///
    /// Panics if frame shapes mismatch the model.
    pub fn forward(&self, seq: &HeatmapSeq) -> ForwardCache {
        let mut frames = Vec::with_capacity(seq.len());
        let mut features = Vec::with_capacity(seq.len());
        for hm in seq.frames() {
            let (f, cache) = self.frame_forward(hm);
            features.push(f);
            frames.push(cache);
        }
        let lstm = self.lstm.forward(&features);
        let logits = self.head.forward(lstm.last_hidden());
        ForwardCache { frames, lstm, features, logits }
    }

    /// Class logits for a sample.
    pub fn logits(&self, seq: &HeatmapSeq) -> Vec<f32> {
        self.forward(seq).logits
    }

    /// Class probabilities for a sample.
    pub fn probabilities(&self, seq: &HeatmapSeq) -> Vec<f32> {
        softmax(&self.logits(seq))
    }

    /// Predicted class index.
    pub fn predict(&self, seq: &HeatmapSeq) -> usize {
        let logits = self.logits(seq);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("nonempty logits")
    }

    /// Logits computed from precomputed per-frame features — the
    /// "LSTM model `f`" of the paper's Eq. (1), which SHAP probes with
    /// frame features included or masked out.
    ///
    /// # Panics
    ///
    /// Panics if `features` is empty or has wrong dimensions.
    pub fn logits_from_features(&self, features: &[Vec<f32>]) -> Vec<f32> {
        let cache = self.lstm.forward(features);
        self.head.forward(cache.last_hidden())
    }

    /// Backpropagates `dlogits` through the whole model, accumulating
    /// parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch the cache.
    pub fn backward(&mut self, cache: &ForwardCache, dlogits: &[f32]) {
        // Head.
        let dh_last = self.head.backward(cache.lstm.last_hidden(), dlogits);
        // LSTM: loss touches only the last hidden state.
        let n = cache.features.len();
        let mut dh = vec![vec![0.0; self.lstm.n_hidden()]; n];
        dh[n - 1] = dh_last;
        let dfeatures = self.lstm.backward(&cache.lstm, &dh);
        // CNN per frame.
        let (h2, w2) = (self.rows / 2, self.cols / 2);
        for (fc, df) in cache.frames.iter().zip(&dfeatures) {
            let df_pre = relu_backward(&fc.f_pre, df);
            let dp2 = self.feat.backward(&fc.p2, &df_pre);
            let dr2 = self.pool.backward(&dp2, &fc.i2, fc.a2.len());
            let da2 = relu_backward(&fc.a2, &dr2);
            let dp1 = self.conv2.backward(&fc.p1, h2, w2, &da2);
            let dr1 = self.pool.backward(&dp1, &fc.i1, fc.a1.len());
            let da1 = relu_backward(&fc.a1, &dr1);
            let _dx = self.conv1.backward(&fc.input, self.rows, self.cols, &da1);
        }
    }

    /// All parameter tensors in a stable order (for the optimizer).
    pub fn param_tensors(&mut self) -> Vec<&mut ParamTensor> {
        let mut out = Vec::with_capacity(10);
        out.extend(self.conv1.param_tensors());
        out.extend(self.conv2.param_tensors());
        out.extend(self.feat.param_tensors());
        out.extend(self.lstm.param_tensors());
        out.extend(self.head.param_tensors());
        out
    }

    /// Zeroes all gradient accumulators.
    pub fn zero_grads(&mut self) {
        self.conv1.zero_grads();
        self.conv2.zero_grads();
        self.feat.zero_grads();
        self.lstm.zero_grads();
        self.head.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_dsp::heatmap::HeatmapKind;
    use mmwave_nn::softmax_cross_entropy;
    use rand::Rng;

    fn cfg() -> PrototypeConfig {
        PrototypeConfig::smoke_test()
    }

    fn random_seq(cfg: &PrototypeConfig, seed: u64) -> HeatmapSeq {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let frames = (0..cfg.n_frames)
            .map(|_| {
                let data: Vec<f32> = (0..cfg.heatmap_rows * cfg.heatmap_cols)
                    .map(|_| rng.gen_range(0.0..1.0))
                    .collect();
                Heatmap::from_data(cfg.heatmap_rows, cfg.heatmap_cols, HeatmapKind::RangeAngle, data)
            })
            .collect();
        HeatmapSeq::new(frames)
    }

    #[test]
    fn forward_shapes_are_consistent() {
        let c = cfg();
        let m = CnnLstm::new(&c, 1);
        let seq = random_seq(&c, 2);
        let cache = m.forward(&seq);
        assert_eq!(cache.logits.len(), 6);
        assert_eq!(cache.features.len(), c.n_frames);
        assert_eq!(cache.features[0].len(), c.feature_dim);
        let probs = m.probabilities(&seq);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn logits_from_features_match_full_forward() {
        let c = cfg();
        let m = CnnLstm::new(&c, 1);
        let seq = random_seq(&c, 3);
        let cache = m.forward(&seq);
        let via_features = m.logits_from_features(&cache.features);
        for (a, b) in cache.logits.iter().zip(&via_features) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn one_training_step_reduces_loss() {
        let c = cfg();
        let mut m = CnnLstm::new(&c, 5);
        let seq = random_seq(&c, 7);
        let target = 2;
        let mut adam = mmwave_nn::Adam::new(5e-3);
        let cache = m.forward(&seq);
        let (loss0, dlogits) = softmax_cross_entropy(&cache.logits, target);
        m.zero_grads();
        m.backward(&cache, &dlogits);
        adam.step(&mut m.param_tensors());
        let (loss1, _) = softmax_cross_entropy(&m.logits(&seq), target);
        assert!(loss1 < loss0, "loss {loss0} -> {loss1}");
    }

    #[test]
    fn can_overfit_two_samples() {
        let c = cfg();
        let mut m = CnnLstm::new(&c, 11);
        let a = random_seq(&c, 100);
        let b = random_seq(&c, 200);
        let mut adam = mmwave_nn::Adam::new(1e-2);
        for _ in 0..60 {
            for (seq, target) in [(&a, 0usize), (&b, 4usize)] {
                let cache = m.forward(seq);
                let (_, dlogits) = softmax_cross_entropy(&cache.logits, target);
                m.zero_grads();
                m.backward(&cache, &dlogits);
                adam.step(&mut m.param_tensors());
            }
        }
        assert_eq!(m.predict(&a), 0);
        assert_eq!(m.predict(&b), 4);
    }

    #[test]
    fn gradient_check_end_to_end_spot() {
        // Finite-difference a couple of parameters through the whole model.
        let c = cfg();
        let mut m = CnnLstm::new(&c, 13);
        let seq = random_seq(&c, 17);
        let target = 1;
        let cache = m.forward(&seq);
        let (_, dlogits) = softmax_cross_entropy(&cache.logits, target);
        m.zero_grads();
        m.backward(&cache, &dlogits);
        let analytic_conv1 = m.conv1.weights().grad[3];
        let analytic_head = m.head.weights().grad[5];
        let eps = 1e-2;
        let loss_with = |m: &CnnLstm| softmax_cross_entropy(&m.logits(&seq), target).0;
        for (name, analytic, setter) in [
            (
                "conv1",
                analytic_conv1,
                Box::new(|m: &mut CnnLstm, d: f32| m.conv1.weights_mut().data[3] += d)
                    as Box<dyn Fn(&mut CnnLstm, f32)>,
            ),
            (
                "head",
                analytic_head,
                Box::new(|m: &mut CnnLstm, d: f32| m.head.weights_mut().data[5] += d),
            ),
        ] {
            let mut mp = m.clone();
            setter(&mut mp, eps);
            let mut mm = m.clone();
            setter(&mut mm, -eps);
            let fd = (loss_with(&mp) - loss_with(&mm)) / (2.0 * eps);
            assert!(
                (fd - analytic).abs() < 3e-2 * analytic.abs().max(0.1),
                "{name}: fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn deterministic_construction() {
        let c = cfg();
        let a = CnnLstm::new(&c, 9);
        let b = CnnLstm::new(&c, 9);
        assert_eq!(a, b);
        let c2 = CnnLstm::new(&c, 10);
        assert_ne!(a, c2);
    }

    #[test]
    fn parameter_count_is_plausible() {
        let c = PrototypeConfig::fast();
        let m = CnnLstm::new(&c, 0);
        let n = m.n_parameters();
        // conv1 (1*4*9 + 4) + conv2 (4*8*9 + 8) + dense (128*32 + 32)
        // + lstm (128*64 + 128) + head (32*6 + 6)
        assert!(n > 10_000 && n < 30_000, "unexpected parameter count {n}");
    }

    #[test]
    #[should_panic(expected = "heatmap shape mismatch")]
    fn wrong_heatmap_shape_panics() {
        let c = cfg();
        let m = CnnLstm::new(&c, 0);
        let bad = Heatmap::zeros(4, 4, HeatmapKind::RangeAngle);
        m.frame_features(&bad);
    }
}
