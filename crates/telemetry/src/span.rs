//! Hierarchical span timers with RAII guards.
//!
//! A span measures one stage of the pipeline. Spans nest: each thread keeps
//! a stack of open span names, and a span opened while another is active is
//! recorded under the `/`-joined path of its ancestors — `"capture"` opened
//! around `"drai"` yields the path `"capture/drai"`. The stack is
//! thread-local, so parallel workers (e.g. crossbeam dataset generation)
//! each attribute their spans independently.
//!
//! Timing data goes to the global registry's span histograms; in addition a
//! [`crate::event::EventKind::Span`] event with the duration is emitted at
//! the span's level, so sinks verbose enough to care see every occurrence.

use crate::event::{EventKind, Level};
use crate::registry::{global, Registry};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an open span; records the elapsed time when dropped.
/// Obtained from [`span`] or [`span_at`].
#[must_use = "a span measures nothing unless held for the duration of the stage"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    registry: &'static Registry,
    path: String,
    level: Level,
    start: Instant,
}

impl SpanGuard {
    fn open(name: &str, level: Level) -> SpanGuard {
        let registry = global();
        if !registry.is_enabled() {
            return SpanGuard { inner: None };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if stack.is_empty() {
                name.to_string()
            } else {
                format!("{}/{name}", stack.join("/"))
            };
            stack.push(name.to_string());
            path
        });
        SpanGuard {
            inner: Some(SpanInner { registry, path, level, start: Instant::now() }),
        }
    }

    /// Full `/`-joined hierarchical path of this span, or `None` when
    /// telemetry is disabled.
    pub fn path(&self) -> Option<&str> {
        self.inner.as_ref().map(|i| i.path.as_str())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let elapsed = inner.start.elapsed();
        inner.registry.record_span(&inner.path, elapsed.as_secs_f64());
        if inner.registry.would_emit(inner.level) {
            let mut fields = serde_json::Map::new();
            fields.insert(
                "duration_us".to_string(),
                serde_json::Value::from(elapsed.as_micros() as u64),
            );
            inner.registry.emit(inner.level, EventKind::Span, &inner.path, fields);
        }
    }
}

/// Opens a hot-path span at [`Level::Trace`] (per-frame granularity; only
/// very verbose sinks see the individual events, but the timing histogram
/// always accumulates).
pub fn span(name: &str) -> SpanGuard {
    SpanGuard::open(name, Level::Trace)
}

/// Opens a span at an explicit level — [`Level::Debug`] for stage-level
/// spans like a whole capture or a training fit.
pub fn span_at(name: &str, level: Level) -> SpanGuard {
    SpanGuard::open(name, level)
}
