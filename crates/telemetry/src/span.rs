//! Hierarchical span timers with RAII guards.
//!
//! A span measures one stage of the pipeline. Spans nest: each thread keeps
//! a stack of open span names, and a span opened while another is active is
//! recorded under the `/`-joined path of its ancestors — `"capture"` opened
//! around `"drai"` yields the path `"capture/drai"`. The stack is
//! thread-local, so parallel workers (e.g. crossbeam dataset generation)
//! each attribute their spans independently — but a runtime that moves work
//! *between* threads can carry the submitting thread's path along with the
//! task via [`current_path`] / [`enter_context`], so a span opened inside a
//! pool task nests under the same path it would have in a serial run. The
//! `mmwave-exec` pool does exactly that, which is what makes the profile
//! tree and trace span paths worker-count-stable.
//!
//! Timing data goes to the global registry's span histograms; in addition a
//! [`crate::event::EventKind::Span`] event with the duration, the
//! process-relative start time (`start_us`), and the executing thread id
//! (`tid`) is emitted at the span's level, so sinks verbose enough to care
//! see every occurrence — the trace sink turns them into Chrome-trace
//! complete events.

use crate::event::{process_micros, thread_id, EventKind, Level};
use crate::registry::{global, Registry};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an open span; records the elapsed time when dropped.
/// Obtained from [`span`] or [`span_at`].
#[must_use = "a span measures nothing unless held for the duration of the stage"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    registry: &'static Registry,
    path: String,
    level: Level,
    start: Instant,
    start_us: u64,
}

impl SpanGuard {
    fn open(name: &str, level: Level) -> SpanGuard {
        let registry = global();
        if !registry.is_enabled() {
            return SpanGuard { inner: None };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if stack.is_empty() {
                name.to_string()
            } else {
                format!("{}/{name}", stack.join("/"))
            };
            stack.push(name.to_string());
            path
        });
        SpanGuard {
            inner: Some(SpanInner {
                registry,
                path,
                level,
                start: Instant::now(),
                start_us: process_micros(),
            }),
        }
    }

    /// Full `/`-joined hierarchical path of this span, or `None` when
    /// telemetry is disabled.
    pub fn path(&self) -> Option<&str> {
        self.inner.as_ref().map(|i| i.path.as_str())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let elapsed = inner.start.elapsed();
        inner.registry.record_span(&inner.path, elapsed.as_secs_f64());
        if inner.registry.would_emit(inner.level) {
            let mut fields = serde_json::Map::new();
            fields.insert(
                "duration_us".to_string(),
                serde_json::Value::from(elapsed.as_micros() as u64),
            );
            fields.insert("start_us".to_string(), serde_json::Value::from(inner.start_us));
            fields.insert("tid".to_string(), serde_json::Value::from(thread_id()));
            inner.registry.emit(inner.level, EventKind::Span, &inner.path, fields);
        }
    }
}

/// Opens a hot-path span at [`Level::Trace`] (per-frame granularity; only
/// very verbose sinks see the individual events, but the timing histogram
/// always accumulates).
pub fn span(name: &str) -> SpanGuard {
    SpanGuard::open(name, Level::Trace)
}

/// Opens a span at an explicit level — [`Level::Debug`] for stage-level
/// spans like a whole capture or a training fit.
pub fn span_at(name: &str, level: Level) -> SpanGuard {
    SpanGuard::open(name, level)
}

/// The calling thread's current `/`-joined span path, or `None` when no
/// span is open (or telemetry is disabled). A task runtime captures this
/// at submit time and replays it on the executing thread with
/// [`enter_context`].
pub fn current_path() -> Option<String> {
    SPAN_STACK.with(|stack| {
        let stack = stack.borrow();
        if stack.is_empty() {
            None
        } else {
            Some(stack.join("/"))
        }
    })
}

/// Restores the span stack saved by [`enter_context`] when dropped —
/// panic-safe, so a panicking task cannot leak its parent's context onto a
/// pool worker.
#[must_use = "dropping the guard immediately would restore the previous context at once"]
pub struct ContextGuard {
    saved: Vec<String>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        SPAN_STACK.with(|stack| {
            *stack.borrow_mut() = std::mem::take(&mut self.saved);
        });
    }
}

/// *Replaces* the calling thread's span stack with `path` (a `/`-joined
/// span path captured by [`current_path`] on another thread; `None` clears
/// the stack) until the returned guard drops. Replacement rather than
/// pushing is what makes the call correct both on an idle pool worker
/// (empty stack → the submitted context) and on a caller helping drain its
/// own job (its live stack *is* the context; swapping in the same path
/// changes nothing).
pub fn enter_context(path: Option<&str>) -> ContextGuard {
    let fresh = match path {
        Some(p) if !p.is_empty() => vec![p.to_string()],
        _ => Vec::new(),
    };
    let saved = SPAN_STACK.with(|stack| std::mem::replace(&mut *stack.borrow_mut(), fresh));
    ContextGuard { saved }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_propagates_a_parent_path() {
        // No open span: no context.
        assert_eq!(current_path(), None);
        let outer = span("ctx_outer");
        let ctx = current_path();
        // Telemetry may be disabled globally in some environments; only
        // assert the nesting logic when the span actually opened.
        if outer.path().is_some() {
            assert_eq!(ctx.as_deref(), Some("ctx_outer"));
            let worker = std::thread::spawn(move || {
                let _enter = enter_context(ctx.as_deref());
                let inner = span("ctx_inner");
                let path = inner.path().map(str::to_string);
                drop(inner);
                assert_eq!(current_path(), Some("ctx_outer".to_string()));
                path
            })
            .join()
            .unwrap();
            assert_eq!(worker.as_deref(), Some("ctx_outer/ctx_inner"));
        }
        drop(outer);
        assert_eq!(current_path(), None);
    }

    #[test]
    fn enter_context_restores_on_drop_even_after_panic() {
        let outer = span("restore_outer");
        if outer.path().is_some() {
            let before = current_path();
            let result = std::panic::catch_unwind(|| {
                let _enter = enter_context(Some("elsewhere"));
                panic!("task panic");
            });
            assert!(result.is_err());
            assert_eq!(current_path(), before, "context must restore through unwinding");
        }
        drop(outer);
    }
}
