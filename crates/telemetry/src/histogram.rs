//! Log-linear histograms with bounded relative error.
//!
//! The bucket layout follows the HDR-histogram idea: values are grouped
//! into octaves (powers of two above a fixed minimum resolution), and each
//! octave is split into [`SUBBUCKETS`] linear sub-buckets. Recording is
//! `O(1)`, memory is fixed, and any quantile estimate lands within
//! `1 / (2 * SUBBUCKETS)` relative error of the exact order statistic —
//! about 1.6 % with 32 sub-buckets, regardless of how many values were
//! recorded or how skewed they are.

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per octave; bounds the relative quantile error at
/// `1 / (2 * SUBBUCKETS)`.
pub const SUBBUCKETS: usize = 32;

/// Octaves covered above [`MIN_VALUE`]. `96` octaves above `1e-9` reach
/// `~7.9e19`, far beyond any duration or metric this crate records.
const OCTAVES: usize = 96;

/// Smallest distinguishable positive value; everything at or below zero
/// (and everything smaller than this) lands in the underflow bucket.
const MIN_VALUE: f64 = 1e-9;

/// A fixed-memory log-linear histogram over nonnegative `f64` samples.
///
/// # Examples
///
/// ```
/// use mmwave_telemetry::histogram::LogLinearHistogram;
///
/// let mut h = LogLinearHistogram::new();
/// for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// let p50 = h.quantile(0.5);
/// assert!((p50 - 3.0).abs() / 3.0 < 0.05, "p50 = {p50}");
/// assert_eq!(h.quantile(1.0), 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct LogLinearHistogram {
    /// Samples `<= MIN_VALUE` (includes zero and negatives).
    underflow: u64,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        LogLinearHistogram::new()
    }
}

impl LogLinearHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LogLinearHistogram {
        LogLinearHistogram {
            underflow: 0,
            counts: vec![0; OCTAVES * SUBBUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Non-finite samples are ignored; values at or
    /// below [`MIN_VALUE`] land in the underflow bucket but still count.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        match Self::bucket_of(value) {
            Some(b) => self.counts[b] += 1,
            None => self.underflow += 1,
        }
    }

    fn bucket_of(value: f64) -> Option<usize> {
        let scaled = value / MIN_VALUE;
        if scaled < 1.0 {
            return None;
        }
        let exp = scaled.log2().floor() as usize;
        if exp >= OCTAVES {
            return Some(OCTAVES * SUBBUCKETS - 1);
        }
        let lower = 2f64.powi(exp as i32);
        let sub = (((scaled / lower) - 1.0) * SUBBUCKETS as f64) as usize;
        Some(exp * SUBBUCKETS + sub.min(SUBBUCKETS - 1))
    }

    /// Midpoint value represented by bucket `b`.
    fn representative(b: usize) -> f64 {
        let exp = b / SUBBUCKETS;
        let sub = b % SUBBUCKETS;
        MIN_VALUE * 2f64.powi(exp as i32) * (1.0 + (sub as f64 + 0.5) / SUBBUCKETS as f64)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample, or `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`), or `0.0` when empty.
    /// `quantile(0.0)` is the exact minimum, `quantile(1.0)` the exact
    /// maximum; everything in between is accurate to the bucket's relative
    /// width.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max();
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if seen >= rank {
            return self.min().max(0.0);
        }
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                // Clamp to the observed range: the extreme buckets would
                // otherwise report mid-bucket values outside [min, max].
                return Self::representative(b).clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Merges `other` into `self`, bucket by bucket. Because both sides
    /// share the same fixed bucket layout the merge is exact: the result
    /// is indistinguishable from one histogram that recorded both sample
    /// streams (the `sum` field is the only f64 accumulation, and it adds
    /// in the same order as sequential recording of `self` then `other`).
    pub fn merge(&mut self, other: &LogLinearHistogram) {
        self.underflow += other.underflow;
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        // The empty sentinels (min = +inf, max = -inf) are absorbing under
        // min/max, so merging an empty side is a no-op.
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Full-fidelity export of the histogram state for shipping between
    /// processes. Only non-empty buckets are listed, so the export stays
    /// small; [`LogLinearHistogram::from_export`] round-trips it exactly.
    pub fn export(&self) -> HistogramExport {
        HistogramExport {
            count: self.count,
            sum: self.sum,
            // JSON cannot carry the infinity sentinels of an empty
            // histogram, so min/max travel as Option.
            min: (self.count > 0).then_some(self.min),
            max: (self.count > 0).then_some(self.max),
            underflow: self.underflow,
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(b, &c)| (b as u32, c))
                .collect(),
        }
    }

    /// Rebuilds a histogram from an [`export`](Self::export). Bucket
    /// indices outside the fixed layout are clamped into range (they can
    /// only appear in hand-edited or corrupted shards).
    pub fn from_export(export: &HistogramExport) -> LogLinearHistogram {
        let mut h = LogLinearHistogram::new();
        h.count = export.count;
        h.sum = export.sum;
        h.min = export.min.unwrap_or(f64::INFINITY);
        h.max = export.max.unwrap_or(f64::NEG_INFINITY);
        h.underflow = export.underflow;
        let last = OCTAVES * SUBBUCKETS - 1;
        for &(b, c) in &export.buckets {
            h.counts[(b as usize).min(last)] += c;
        }
        h
    }

    /// A serializable summary of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            mean: self.mean(),
            min: self.min(),
            p50: self.quantile(0.5),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Lossless wire form of a [`LogLinearHistogram`]: everything needed to
/// rebuild the exact bucket state on another process, with empty buckets
/// elided. Produced by [`LogLinearHistogram::export`], consumed by
/// [`LogLinearHistogram::from_export`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramExport {
    /// Number of samples.
    #[serde(default)]
    pub count: u64,
    /// Sum of samples.
    #[serde(default)]
    pub sum: f64,
    /// Exact minimum; `None` when empty (JSON has no infinities).
    #[serde(default)]
    pub min: Option<f64>,
    /// Exact maximum; `None` when empty.
    #[serde(default)]
    pub max: Option<f64>,
    /// Samples below the smallest representable bucket.
    #[serde(default)]
    pub underflow: u64,
    /// `(bucket_index, count)` pairs for every non-empty bucket.
    #[serde(default)]
    pub buckets: Vec<(u32, u64)>,
}

/// Point-in-time summary of a [`LogLinearHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Mean sample.
    pub mean: f64,
    /// Exact minimum.
    pub min: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Exact maximum.
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogLinearHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn single_value_is_every_quantile() {
        let mut h = LogLinearHistogram::new();
        h.record(42.0);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 42.0, "q = {q}");
        }
    }

    #[test]
    fn zero_and_negative_values_count_as_underflow() {
        let mut h = LogLinearHistogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(10.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -5.0);
        assert_eq!(h.max(), 10.0);
        // The median of [-5, 0, 10] sits in the underflow bucket.
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut h = LogLinearHistogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(1.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), 1.0);
    }

    #[test]
    fn quantiles_match_exact_sort_within_bucket_error() {
        // Deterministic pseudo-random log-uniform-ish samples spanning
        // several orders of magnitude.
        let mut state = 0x2545F491_4F6C_DD1Du64;
        let mut samples = Vec::with_capacity(5000);
        let mut h = LogLinearHistogram::new();
        for _ in 0..5000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
            let v = 10f64.powf(-4.0 + 8.0 * u); // 1e-4 .. 1e4
            samples.push(v);
            h.record(v);
        }
        samples.sort_by(f64::total_cmp);
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
            let exact = samples[rank];
            let approx = h.quantile(q);
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel < 0.05,
                "q = {q}: exact {exact}, approx {approx}, rel err {rel}"
            );
        }
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let left_samples = [0.5, 3.0, 0.0, 128.0, 7.25];
        let right_samples = [2.0, -1.0, 1e6, 0.125];
        let (mut left, mut right, mut both) = (
            LogLinearHistogram::new(),
            LogLinearHistogram::new(),
            LogLinearHistogram::new(),
        );
        for v in left_samples {
            left.record(v);
            both.record(v);
        }
        for v in right_samples {
            right.record(v);
            both.record(v);
        }
        left.merge(&right);
        assert_eq!(left.export(), both.export());
        assert_eq!(left.snapshot(), both.snapshot());
    }

    #[test]
    fn merging_an_empty_histogram_is_a_noop() {
        let mut h = LogLinearHistogram::new();
        h.record(4.0);
        let before = h.export();
        h.merge(&LogLinearHistogram::new());
        assert_eq!(h.export(), before);

        let mut empty = LogLinearHistogram::new();
        empty.merge(&h);
        assert_eq!(empty.export(), before);
    }

    #[test]
    fn export_round_trips_exactly_through_json() {
        let mut h = LogLinearHistogram::new();
        for v in [1e-12, 0.0, 0.25, 1.0, 3.5, 1e18] {
            h.record(v);
        }
        let json = serde_json::to_string(&h.export()).expect("serialize");
        let back: HistogramExport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, h.export());
        let rebuilt = LogLinearHistogram::from_export(&back);
        assert_eq!(rebuilt.export(), h.export());
        assert_eq!(rebuilt.snapshot(), h.snapshot());
    }

    #[test]
    fn empty_export_round_trips() {
        let h = LogLinearHistogram::new();
        let e = h.export();
        assert_eq!(e.min, None);
        assert_eq!(e.max, None);
        let rebuilt = LogLinearHistogram::from_export(&e);
        assert_eq!(rebuilt.count(), 0);
        assert_eq!(rebuilt.min(), 0.0);
        assert_eq!(rebuilt.max(), 0.0);
    }

    #[test]
    fn from_export_clamps_out_of_range_buckets() {
        let e = HistogramExport {
            count: 1,
            sum: 1.0,
            min: Some(1.0),
            max: Some(1.0),
            underflow: 0,
            buckets: vec![(u32::MAX, 1)],
        };
        let h = LogLinearHistogram::from_export(&e);
        assert_eq!(h.count(), 1);
        // The stray bucket landed in the top slot rather than panicking.
        assert_eq!(h.quantile(0.5), 1.0);
    }

    #[test]
    fn snapshot_is_consistent() {
        let mut h = LogLinearHistogram::new();
        for v in [1.0, 2.0, 3.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 6.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }
}
