//! The structured event type shared by every sink, and its severity level.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::time::{SystemTime, UNIX_EPOCH};

/// Severity / verbosity level. Ordered from least verbose ([`Level::Error`])
/// to most verbose ([`Level::Trace`]): a sink configured at verbosity `L`
/// records every event whose level is `<= L`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(rename_all = "lowercase")]
pub enum Level {
    /// The run is degraded or failing.
    Error,
    /// Something unexpected that the pipeline recovered from.
    Warn,
    /// Run-level milestones (campaign points, summaries).
    Info,
    /// Stage-level detail (per-capture, per-epoch).
    Debug,
    /// Hot-path detail (per-frame spans).
    Trace,
}

impl Level {
    /// All levels, least to most verbose.
    pub const ALL: [Level; 5] =
        [Level::Error, Level::Warn, Level::Info, Level::Debug, Level::Trace];

    /// Lowercase name, matching the serialized form.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level `{other}` (expected error|warn|info|debug|trace)"
            )),
        }
    }
}

/// What kind of occurrence an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EventKind {
    /// A human-oriented log line (`fields["message"]`).
    Log,
    /// A completed span (`fields["duration_us"]`, `fields["start_us"]`,
    /// `fields["tid"]`).
    Span,
    /// A structured measurement (epoch stats, capture stats, ...).
    Metric,
    /// A counter increment (`fields["delta"]`, `fields["value"]`); only
    /// emitted when a trace-verbosity sink is installed.
    Counter,
    /// A gauge update (`fields["value"]`); only emitted when a
    /// trace-verbosity sink is installed.
    Gauge,
    /// A fault or recovery occurrence (dropped frame, trainer rollback).
    Fault,
    /// A completed campaign point.
    Point,
    /// The end-of-run aggregate snapshot.
    Summary,
}

/// One structured, self-describing run event. Serialized as a single JSON
/// line by the JSONL sink; rendered human-readably by the stderr sink.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Event {
    /// Milliseconds since the Unix epoch.
    pub ts_ms: u64,
    /// Severity.
    pub level: Level,
    /// Event kind.
    pub kind: EventKind,
    /// Event name: a log target, a span path, or a metric name.
    pub name: String,
    /// Structured payload.
    #[serde(default, skip_serializing_if = "serde_json::Map::is_empty")]
    pub fields: serde_json::Map<String, serde_json::Value>,
}

impl Event {
    /// Creates an event stamped with the current wall-clock time.
    pub fn now(
        level: Level,
        kind: EventKind,
        name: &str,
        fields: serde_json::Map<String, serde_json::Value>,
    ) -> Event {
        Event { ts_ms: unix_millis(), level, kind, name: name.to_string(), fields }
    }

    /// Renders the event for human eyes: `HH:MM:SS.mmm LEVEL name key=value ...`
    /// with the `message` field (if any) inlined before the remaining fields.
    pub fn format_human(&self) -> String {
        let secs = self.ts_ms / 1000;
        let (h, m, s, ms) =
            (secs / 3600 % 24, secs / 60 % 60, secs % 60, self.ts_ms % 1000);
        let mut out = format!(
            "{h:02}:{m:02}:{s:02}.{ms:03} {:<5} {}",
            self.level.as_str().to_ascii_uppercase(),
            self.name
        );
        if let Some(serde_json::Value::String(msg)) = self.fields.get("message") {
            out.push_str(": ");
            out.push_str(msg);
        }
        for (k, v) in &self.fields {
            if k == "message" {
                continue;
            }
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
        }
        out
    }
}

/// Current wall-clock time in milliseconds since the Unix epoch.
pub fn unix_millis() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Microseconds since this process first touched the telemetry clock — a
/// monotonic timestamp shared by every thread, which is what trace
/// timelines need (wall-clock `ts_ms` only has millisecond resolution).
pub fn process_micros() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// A small, stable id for the calling thread, assigned on first use. Used
/// to attribute trace events to the `mmwave-exec` worker (or main) thread
/// that produced them; ids are process-local and dense (0, 1, 2, ...).
pub fn thread_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_is_verbosity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn level_roundtrips_through_str() {
        for level in Level::ALL {
            assert_eq!(level.as_str().parse::<Level>().unwrap(), level);
        }
        assert!("verbose".parse::<Level>().is_err());
        assert_eq!("WARN".parse::<Level>().unwrap(), Level::Warn);
    }

    #[test]
    fn event_serializes_as_compact_json() {
        let mut fields = serde_json::Map::new();
        fields.insert("frames".to_string(), serde_json::Value::from(32u64));
        let e = Event::now(Level::Debug, EventKind::Metric, "capture", fields);
        let line = serde_json::to_string(&e).unwrap();
        assert!(line.contains("\"level\":\"debug\""));
        assert!(line.contains("\"kind\":\"metric\""));
        assert!(line.contains("\"frames\":32"));
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back.name, "capture");
        assert_eq!(back.level, Level::Debug);
    }

    #[test]
    fn counter_and_gauge_kinds_roundtrip() {
        for (kind, tag) in [(EventKind::Counter, "\"counter\""), (EventKind::Gauge, "\"gauge\"")] {
            let line = serde_json::to_string(&kind).unwrap();
            assert_eq!(line, tag);
            let back: EventKind = serde_json::from_str(&line).unwrap();
            assert_eq!(back, kind);
        }
    }

    #[test]
    fn thread_ids_are_stable_and_distinct_across_threads() {
        let here = thread_id();
        assert_eq!(here, thread_id(), "a thread's id must not change");
        let there = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(here, there, "different threads need different ids");
    }

    #[test]
    fn process_micros_is_monotonic() {
        let a = process_micros();
        let b = process_micros();
        assert!(b >= a);
    }

    #[test]
    fn human_format_inlines_message() {
        let mut fields = serde_json::Map::new();
        fields.insert("message".to_string(), serde_json::Value::from("hello"));
        fields.insert("n".to_string(), serde_json::Value::from(3u64));
        let e = Event::now(Level::Info, EventKind::Log, "cli", fields);
        let s = e.format_human();
        assert!(s.contains("INFO"));
        assert!(s.contains("cli: hello"));
        assert!(s.contains("n=3"));
    }
}
