//! Pluggable event sinks: human-readable stderr and machine-readable
//! JSON-lines files.

use crate::event::{Event, Level};
use parking_lot::Mutex;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — byte-compatible with the
/// framing in `mmwave-store`'s JSONL writer, so metrics files written here
/// are also readable by the store's torn-tail repair. `mmwave-store` owns
/// the general-purpose version of this; telemetry sits below it in the
/// crate graph and keeps a private copy.
fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        const POLY: u32 = 0xEDB8_8320;
        let mut table = [0u32; 256];
        let mut i = 0u32;
        while i < 256 {
            let mut crc = i;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
                bit += 1;
            }
            table[i as usize] = crc;
            i += 1;
        }
        table
    });
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Parses one metrics line, accepting both the CRC-framed form
/// (`<8-hex-crc><space><json>`) and legacy bare JSON lines.
fn parse_line(line: &str) -> Option<Event> {
    let bytes = line.as_bytes();
    if bytes.len() > 9 && bytes[8] == b' ' && line[..8].bytes().all(|b| b.is_ascii_hexdigit()) {
        if let Ok(crc) = u32::from_str_radix(&line[..8], 16) {
            let body = &line[9..];
            if crc == crc32(body.as_bytes()) {
                return serde_json::from_str::<Event>(body).ok();
            }
            // A framed line with a bad checksum is torn or corrupt, not
            // legacy: don't let the whole-line fallback mis-parse it.
            return None;
        }
    }
    serde_json::from_str::<Event>(line).ok()
}

/// Receives every event whose level passes the sink's verbosity. Sinks must
/// never panic or block the pipeline on failure: recording errors are
/// swallowed (telemetry is an observer, not a dependency).
pub trait Sink: Send + Sync {
    /// Most verbose level this sink accepts; events with `level <=
    /// verbosity()` are delivered.
    fn verbosity(&self) -> Level;

    /// Delivers one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered output.
    fn flush(&self) {}
}

/// Human-readable sink writing to stderr.
#[derive(Debug, Clone, Copy)]
pub struct StderrSink {
    verbosity: Level,
}

impl StderrSink {
    /// Creates a stderr sink delivering events up to `verbosity`.
    pub fn new(verbosity: Level) -> StderrSink {
        StderrSink { verbosity }
    }
}

impl Sink for StderrSink {
    fn verbosity(&self) -> Level {
        self.verbosity
    }

    fn record(&self, event: &Event) {
        eprintln!("{}", event.format_human());
    }
}

/// Machine-readable sink appending one JSON object per line to a file,
/// each line prefixed with its CRC-32 in the same `<8-hex> <json>` frame
/// the `mmwave-store` journal writer uses (so metric streams get the same
/// torn-tail repair as journals). Every line is flushed as it is written,
/// so a killed process corrupts at most the trailing line — which
/// [`read_jsonl_events`] tolerates.
pub struct JsonlSink {
    verbosity: Level,
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (or truncates) the file at `path`, creating parent
    /// directories as needed. Accepts everything up to [`Level::Trace`].
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directories or the file.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<JsonlSink> {
        JsonlSink::with_verbosity(path, Level::Trace)
    }

    /// Like [`JsonlSink::create`] with an explicit verbosity cap.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directories or the file.
    pub fn with_verbosity<P: AsRef<Path>>(path: P, verbosity: Level) -> io::Result<JsonlSink> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(JsonlSink { verbosity, writer: Mutex::new(BufWriter::new(file)) })
    }
}

impl Sink for JsonlSink {
    fn verbosity(&self) -> Level {
        self.verbosity
    }

    fn record(&self, event: &Event) {
        let Ok(line) = serde_json::to_string(event) else {
            return;
        };
        let crc = crc32(line.as_bytes());
        let mut w = self.writer.lock();
        let _ = writeln!(w, "{crc:08x} {line}");
        let _ = w.flush();
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

impl Drop for JsonlSink {
    /// Belt-and-braces: the registry flushes sinks on reconfiguration and
    /// `finish()`, but a sink dropped outside that lifecycle (tests,
    /// ad-hoc tooling) must still leave complete lines behind.
    fn drop(&mut self) {
        let _ = self.writer.lock().flush();
    }
}

/// Reads the events of a JSONL metrics file, tolerating a torn trailing
/// line (the signature of a process killed mid-write): replay stops at the
/// first unparseable line and returns the intact prefix. Both CRC-framed
/// lines (what [`JsonlSink`] writes) and legacy bare JSON lines parse, so
/// metrics files from older builds stay readable.
///
/// # Errors
///
/// Returns any I/O error from opening or reading the file.
pub fn read_jsonl_events<P: AsRef<Path>>(path: P) -> io::Result<Vec<Event>> {
    let reader = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(&line) {
            Some(event) => out.push(event),
            None => break,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mmwave_sink_{tag}_{}.jsonl", std::process::id()))
    }

    fn sample_event(name: &str) -> Event {
        let mut fields = serde_json::Map::new();
        fields.insert("value".to_string(), serde_json::Value::from(1.5));
        Event::now(Level::Info, EventKind::Metric, name, fields)
    }

    #[test]
    fn jsonl_sink_roundtrips_events() {
        let path = temp_path("roundtrip");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&sample_event("a"));
        sink.record(&sample_event("b"));
        sink.flush();
        let events = read_jsonl_events(&path).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[1].name, "b");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_trailing_line_is_tolerated() {
        let path = temp_path("torn");
        let sink = JsonlSink::create(&path).unwrap();
        for name in ["a", "b", "c"] {
            sink.record(&sample_event(name));
        }
        sink.flush();
        drop(sink);
        // Simulate a kill mid-append: chop the file mid-line.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 7);
        std::fs::write(&path, &bytes).unwrap();
        let events = read_jsonl_events(&path).unwrap();
        assert_eq!(events.len(), 2, "intact prefix must survive a torn tail");
        assert_eq!(events[1].name, "b");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_without_explicit_flush_loses_nothing() {
        let path = temp_path("drop_flush");
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record(&sample_event("a"));
            sink.record(&sample_event("b"));
            // No flush() call: Drop must drain the buffer.
        }
        let events = read_jsonl_events(&path).unwrap();
        assert_eq!(events.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn killed_writer_leaves_at_most_one_torn_line() {
        // Per-record flushing means an abrupt stop (simulated by chopping
        // the file at an arbitrary byte) can tear at most the final line;
        // everything before it parses.
        let path = temp_path("kill");
        let sink = JsonlSink::create(&path).unwrap();
        for i in 0..20 {
            sink.record(&sample_event(&format!("event_{i}")));
        }
        drop(sink);
        let bytes = std::fs::read(&path).unwrap();
        let cut = bytes.len() - 11; // mid-way through the last line
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let events = read_jsonl_events(&path).unwrap();
        assert_eq!(events.len(), 19, "only the torn tail line may be lost");
        assert_eq!(events.last().unwrap().name, "event_18");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc32_matches_the_zlib_check_value() {
        // Same convention (and thus the same frames) as mmwave-store.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn written_lines_carry_a_valid_crc_frame() {
        let path = temp_path("framed");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&sample_event("a"));
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text.lines().next().unwrap();
        assert_eq!(line.as_bytes()[8], b' ');
        let crc = u32::from_str_radix(&line[..8], 16).unwrap();
        assert_eq!(crc, crc32(line[9..].as_bytes()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_bare_json_lines_still_parse() {
        let path = temp_path("legacy");
        let framed_line = {
            let json = serde_json::to_string(&sample_event("framed")).unwrap();
            format!("{:08x} {json}", crc32(json.as_bytes()))
        };
        let legacy_line = serde_json::to_string(&sample_event("legacy")).unwrap();
        // A pre-framing file, plus one framed line mixed in (as a partial
        // rewrite by a newer build would leave behind).
        std::fs::write(&path, format!("{legacy_line}\n{framed_line}\n")).unwrap();
        let events = read_jsonl_events(&path).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "legacy");
        assert_eq!(events[1].name, "framed");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_crc_stops_the_replay() {
        let path = temp_path("badcrc");
        let sink = JsonlSink::create(&path).unwrap();
        for name in ["a", "b", "c"] {
            sink.record(&sample_event(name));
        }
        drop(sink);
        // Flip a payload byte of the middle line: its crc no longer
        // matches, and the reader must not fall back to bare-JSON parsing.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[1] = lines[1].replace("\"b\"", "\"x\"");
        std::fs::write(&path, lines.join("\n")).unwrap();
        let events = read_jsonl_events(&path).unwrap();
        assert_eq!(events.len(), 1, "replay stops at the corrupt line");
        assert_eq!(events[0].name, "a");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_makes_parent_directories() {
        let dir = std::env::temp_dir()
            .join(format!("mmwave_sink_nested_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/run_events.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&sample_event("x"));
        sink.flush();
        assert_eq!(read_jsonl_events(&path).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
