//! Pluggable event sinks: human-readable stderr and machine-readable
//! JSON-lines files.

use crate::event::{Event, Level};
use parking_lot::Mutex;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Receives every event whose level passes the sink's verbosity. Sinks must
/// never panic or block the pipeline on failure: recording errors are
/// swallowed (telemetry is an observer, not a dependency).
pub trait Sink: Send + Sync {
    /// Most verbose level this sink accepts; events with `level <=
    /// verbosity()` are delivered.
    fn verbosity(&self) -> Level;

    /// Delivers one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered output.
    fn flush(&self) {}
}

/// Human-readable sink writing to stderr.
#[derive(Debug, Clone, Copy)]
pub struct StderrSink {
    verbosity: Level,
}

impl StderrSink {
    /// Creates a stderr sink delivering events up to `verbosity`.
    pub fn new(verbosity: Level) -> StderrSink {
        StderrSink { verbosity }
    }
}

impl Sink for StderrSink {
    fn verbosity(&self) -> Level {
        self.verbosity
    }

    fn record(&self, event: &Event) {
        eprintln!("{}", event.format_human());
    }
}

/// Machine-readable sink appending one JSON object per line to a file.
/// Every line is flushed as it is written, so a killed process corrupts at
/// most the trailing line — which [`read_jsonl_events`] tolerates.
pub struct JsonlSink {
    verbosity: Level,
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (or truncates) the file at `path`, creating parent
    /// directories as needed. Accepts everything up to [`Level::Trace`].
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directories or the file.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<JsonlSink> {
        JsonlSink::with_verbosity(path, Level::Trace)
    }

    /// Like [`JsonlSink::create`] with an explicit verbosity cap.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directories or the file.
    pub fn with_verbosity<P: AsRef<Path>>(path: P, verbosity: Level) -> io::Result<JsonlSink> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(JsonlSink { verbosity, writer: Mutex::new(BufWriter::new(file)) })
    }
}

impl Sink for JsonlSink {
    fn verbosity(&self) -> Level {
        self.verbosity
    }

    fn record(&self, event: &Event) {
        let Ok(line) = serde_json::to_string(event) else {
            return;
        };
        let mut w = self.writer.lock();
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

impl Drop for JsonlSink {
    /// Belt-and-braces: the registry flushes sinks on reconfiguration and
    /// `finish()`, but a sink dropped outside that lifecycle (tests,
    /// ad-hoc tooling) must still leave complete lines behind.
    fn drop(&mut self) {
        let _ = self.writer.lock().flush();
    }
}

/// Reads the events of a JSONL metrics file, tolerating a torn trailing
/// line (the signature of a process killed mid-write): replay stops at the
/// first unparseable line and returns the intact prefix.
///
/// # Errors
///
/// Returns any I/O error from opening or reading the file.
pub fn read_jsonl_events<P: AsRef<Path>>(path: P) -> io::Result<Vec<Event>> {
    let reader = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Event>(&line) {
            Ok(event) => out.push(event),
            Err(_) => break,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mmwave_sink_{tag}_{}.jsonl", std::process::id()))
    }

    fn sample_event(name: &str) -> Event {
        let mut fields = serde_json::Map::new();
        fields.insert("value".to_string(), serde_json::Value::from(1.5));
        Event::now(Level::Info, EventKind::Metric, name, fields)
    }

    #[test]
    fn jsonl_sink_roundtrips_events() {
        let path = temp_path("roundtrip");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&sample_event("a"));
        sink.record(&sample_event("b"));
        sink.flush();
        let events = read_jsonl_events(&path).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[1].name, "b");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_trailing_line_is_tolerated() {
        let path = temp_path("torn");
        let sink = JsonlSink::create(&path).unwrap();
        for name in ["a", "b", "c"] {
            sink.record(&sample_event(name));
        }
        sink.flush();
        drop(sink);
        // Simulate a kill mid-append: chop the file mid-line.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 7);
        std::fs::write(&path, &bytes).unwrap();
        let events = read_jsonl_events(&path).unwrap();
        assert_eq!(events.len(), 2, "intact prefix must survive a torn tail");
        assert_eq!(events[1].name, "b");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_without_explicit_flush_loses_nothing() {
        let path = temp_path("drop_flush");
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record(&sample_event("a"));
            sink.record(&sample_event("b"));
            // No flush() call: Drop must drain the buffer.
        }
        let events = read_jsonl_events(&path).unwrap();
        assert_eq!(events.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn killed_writer_leaves_at_most_one_torn_line() {
        // Per-record flushing means an abrupt stop (simulated by chopping
        // the file at an arbitrary byte) can tear at most the final line;
        // everything before it parses.
        let path = temp_path("kill");
        let sink = JsonlSink::create(&path).unwrap();
        for i in 0..20 {
            sink.record(&sample_event(&format!("event_{i}")));
        }
        drop(sink);
        let bytes = std::fs::read(&path).unwrap();
        let cut = bytes.len() - 11; // mid-way through the last line
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let events = read_jsonl_events(&path).unwrap();
        assert_eq!(events.len(), 19, "only the torn tail line may be lost");
        assert_eq!(events.last().unwrap().name, "event_18");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_makes_parent_directories() {
        let dir = std::env::temp_dir()
            .join(format!("mmwave_sink_nested_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/run_events.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&sample_event("x"));
        sink.flush();
        assert_eq!(read_jsonl_events(&path).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
