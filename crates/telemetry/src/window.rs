//! Windowed telemetry primitives: sliding-window counters and
//! ring-of-buckets histograms with **count-based** window advancement.
//!
//! The cumulative [`LogLinearHistogram`](crate::histogram::LogLinearHistogram)
//! answers "what was p99 since process start" but cannot answer "what is
//! p99 over the last N verdicts" — once a sample is recorded it never
//! expires. These types keep a ring of per-window buckets and advance the
//! ring on an explicit [`advance`](WindowedCounter::advance) call issued by
//! the owner every N *events* (never on a wall-clock timer), so a stream
//! that is deterministic at any worker count produces bit-identical window
//! contents at any worker count.
//!
//! Both types are exportable and mergeable like the fleet metric types:
//! exports carry the absolute index of the newest window, and merges align
//! windows by absolute index, so shards from workers that advanced in
//! lockstep combine exactly.

use serde::{Deserialize, Serialize};

use crate::histogram::{HistogramExport, LogLinearHistogram};

/// A sliding-window event counter: a ring of `windows` buckets, each
/// holding the count for one window. [`record`](Self::record) adds to the
/// newest window; [`advance`](Self::advance) retires the oldest.
///
/// # Examples
///
/// ```
/// use mmwave_telemetry::window::WindowedCounter;
///
/// let mut c = WindowedCounter::new(3);
/// c.record(5);
/// c.advance();
/// c.record(2);
/// assert_eq!(c.sum(), 7); // both windows still inside the ring
/// c.advance();
/// c.advance();
/// c.advance();
/// assert_eq!(c.sum(), 0); // everything expired
/// ```
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    /// Ring of per-window counts; `buckets[head]` is the newest window.
    buckets: Vec<u64>,
    head: usize,
    /// Absolute index of the newest window (0-based, total advances).
    newest: u64,
}

/// Equality is semantic, not representational: two counters are equal
/// when they retain the same number of windows, agree on the newest
/// absolute index, and hold the same count at every retained absolute
/// index. Ring rotation is invisible — [`from_export`](WindowedCounter::from_export)
/// and [`merge`](WindowedCounter::merge) rebuild the ring at a different
/// phase than the counter that recorded the same stream, and those must
/// still compare equal.
impl PartialEq for WindowedCounter {
    fn eq(&self, other: &WindowedCounter) -> bool {
        if self.buckets.len() != other.buckets.len() || self.newest != other.newest {
            return false;
        }
        let span = self.buckets.len() as u64;
        let oldest = self.newest.saturating_sub(span - 1);
        (oldest..=self.newest).all(|i| self.at(i) == other.at(i))
    }
}

impl Eq for WindowedCounter {}

impl WindowedCounter {
    /// Creates a counter retaining `windows` windows (clamped to ≥ 1).
    pub fn new(windows: usize) -> WindowedCounter {
        WindowedCounter { buckets: vec![0; windows.max(1)], head: 0, newest: 0 }
    }

    /// Number of windows retained.
    pub fn windows(&self) -> usize {
        self.buckets.len()
    }

    /// Absolute index of the newest (currently recording) window.
    pub fn newest_index(&self) -> u64 {
        self.newest
    }

    /// Adds `n` events to the newest window.
    pub fn record(&mut self, n: u64) {
        self.buckets[self.head] += n;
    }

    /// Closes the newest window and opens the next one, retiring the
    /// oldest window in the ring.
    pub fn advance(&mut self) {
        self.head = (self.head + 1) % self.buckets.len();
        self.buckets[self.head] = 0;
        self.newest += 1;
    }

    /// Count in the newest window.
    pub fn head_count(&self) -> u64 {
        self.buckets[self.head]
    }

    /// Total events across every retained window.
    pub fn sum(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Count of the window at absolute index `index`, or `None` when it
    /// has expired from the ring (or has not happened yet).
    pub fn at(&self, index: u64) -> Option<u64> {
        let span = self.buckets.len() as u64;
        if index > self.newest || index + span <= self.newest {
            return None;
        }
        let back = (self.newest - index) as usize;
        let slot = (self.head + self.buckets.len() - back) % self.buckets.len();
        Some(self.buckets[slot])
    }

    /// Lossless wire form; [`from_export`](Self::from_export) round-trips
    /// it exactly.
    pub fn export(&self) -> WindowedCounterExport {
        let span = self.buckets.len() as u64;
        let oldest = self.newest.saturating_sub(span - 1);
        WindowedCounterExport {
            newest: self.newest,
            counts: (oldest..=self.newest)
                .map(|i| self.at(i).unwrap_or(0))
                .collect(),
        }
    }

    /// Rebuilds a counter from an export. The ring capacity is the export
    /// length (what the exporting side still retained).
    pub fn from_export(export: &WindowedCounterExport) -> WindowedCounter {
        let mut c = WindowedCounter::new(export.counts.len());
        for (k, &n) in export.counts.iter().enumerate() {
            if k > 0 {
                c.advance();
            }
            c.record(n);
        }
        c.newest = export.newest;
        c
    }

    /// Merges `other` into `self`, aligning windows by absolute index:
    /// the result is what one counter would hold had it seen both event
    /// streams. Windows one side has already retired contribute nothing
    /// (they are outside the ring on the merged side too).
    pub fn merge(&mut self, other: &WindowedCounter) {
        let newest = self.newest.max(other.newest);
        let span = self.buckets.len();
        let mut merged = vec![0u64; span];
        for (k, slot) in merged.iter_mut().enumerate() {
            let back = (span - 1 - k) as u64;
            if back > newest {
                continue;
            }
            let index = newest - back;
            *slot = self.at(index).unwrap_or(0) + other.at(index).unwrap_or(0);
        }
        self.buckets = merged;
        self.head = span - 1;
        self.newest = newest;
    }
}

/// Wire form of a [`WindowedCounter`]: per-window counts from oldest to
/// newest plus the newest window's absolute index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowedCounterExport {
    /// Absolute index of the newest window.
    pub newest: u64,
    /// Counts from oldest retained window to newest.
    pub counts: Vec<u64>,
}

/// A ring of per-window [`LogLinearHistogram`]s. Samples land in the
/// newest window; [`aggregate`](Self::aggregate) merges the ring into one
/// histogram answering "p99 over the last `windows` windows".
///
/// # Examples
///
/// ```
/// use mmwave_telemetry::window::WindowedHistogram;
///
/// let mut h = WindowedHistogram::new(2);
/// h.record(100.0);
/// h.advance();
/// h.record(1.0);
/// assert_eq!(h.aggregate().count(), 2);
/// h.advance(); // the 100.0 window expires
/// assert_eq!(h.aggregate().count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    buckets: Vec<LogLinearHistogram>,
    head: usize,
    newest: u64,
}

impl WindowedHistogram {
    /// Creates a windowed histogram retaining `windows` windows (clamped
    /// to ≥ 1).
    pub fn new(windows: usize) -> WindowedHistogram {
        WindowedHistogram {
            buckets: vec![LogLinearHistogram::new(); windows.max(1)],
            head: 0,
            newest: 0,
        }
    }

    /// Number of windows retained.
    pub fn windows(&self) -> usize {
        self.buckets.len()
    }

    /// Absolute index of the newest (currently recording) window.
    pub fn newest_index(&self) -> u64 {
        self.newest
    }

    /// Records one sample into the newest window.
    pub fn record(&mut self, value: f64) {
        self.buckets[self.head].record(value);
    }

    /// Closes the newest window and opens the next, retiring the oldest.
    pub fn advance(&mut self) {
        self.head = (self.head + 1) % self.buckets.len();
        self.buckets[self.head] = LogLinearHistogram::new();
        self.newest += 1;
    }

    /// The histogram of the window at absolute index `index`, if still
    /// retained.
    pub fn at(&self, index: u64) -> Option<&LogLinearHistogram> {
        let span = self.buckets.len() as u64;
        if index > self.newest || index + span <= self.newest {
            return None;
        }
        let back = (self.newest - index) as usize;
        let slot = (self.head + self.buckets.len() - back) % self.buckets.len();
        Some(&self.buckets[slot])
    }

    /// Exact bucket-wise merge of every retained window: the sliding-
    /// window histogram over the last `windows()` windows.
    pub fn aggregate(&self) -> LogLinearHistogram {
        let span = self.buckets.len() as u64;
        let oldest = self.newest.saturating_sub(span - 1);
        let mut out = LogLinearHistogram::new();
        // Merge oldest → newest so the f64 `sum` accumulates in a fixed,
        // ring-phase-independent order.
        for i in oldest..=self.newest {
            if let Some(h) = self.at(i) {
                out.merge(h);
            }
        }
        out
    }

    /// `q`-quantile over the retained windows (0.0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        self.aggregate().quantile(q)
    }

    /// Samples across the retained windows.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(LogLinearHistogram::count).sum()
    }

    /// Lossless wire form; [`from_export`](Self::from_export) round-trips
    /// it exactly.
    pub fn export(&self) -> WindowedHistogramExport {
        let span = self.buckets.len() as u64;
        let oldest = self.newest.saturating_sub(span - 1);
        WindowedHistogramExport {
            newest: self.newest,
            histograms: (oldest..=self.newest)
                .map(|i| match self.at(i) {
                    Some(h) => h.export(),
                    None => LogLinearHistogram::new().export(),
                })
                .collect(),
        }
    }

    /// Rebuilds from an export, with the export length as ring capacity.
    pub fn from_export(export: &WindowedHistogramExport) -> WindowedHistogram {
        let mut w = WindowedHistogram::new(export.histograms.len());
        for (k, e) in export.histograms.iter().enumerate() {
            if k > 0 {
                w.advance();
            }
            w.buckets[w.head] = LogLinearHistogram::from_export(e);
        }
        w.newest = export.newest;
        w
    }

    /// Merges `other` into `self`, aligning windows by absolute index
    /// (exact bucket-wise histogram merges; see
    /// [`WindowedCounter::merge`] for the alignment rule).
    pub fn merge(&mut self, other: &WindowedHistogram) {
        let newest = self.newest.max(other.newest);
        let span = self.buckets.len();
        let mut merged = vec![LogLinearHistogram::new(); span];
        for (k, slot) in merged.iter_mut().enumerate() {
            let back = (span - 1 - k) as u64;
            if back > newest {
                continue;
            }
            let index = newest - back;
            if let Some(h) = self.at(index) {
                slot.merge(h);
            }
            if let Some(h) = other.at(index) {
                slot.merge(h);
            }
        }
        self.buckets = merged;
        self.head = span - 1;
        self.newest = newest;
    }
}

/// Wire form of a [`WindowedHistogram`]: per-window exports from oldest
/// retained window to newest plus the newest absolute index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedHistogramExport {
    /// Absolute index of the newest window.
    pub newest: u64,
    /// Window histograms from oldest retained to newest.
    pub histograms: Vec<HistogramExport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_expires_old_windows() {
        let mut c = WindowedCounter::new(3);
        c.record(10);
        c.advance();
        c.record(20);
        c.advance();
        c.record(30);
        assert_eq!(c.sum(), 60);
        assert_eq!(c.head_count(), 30);
        c.advance(); // the 10 window leaves the ring
        assert_eq!(c.sum(), 50);
        c.advance();
        c.advance();
        assert_eq!(c.sum(), 0);
    }

    #[test]
    fn counter_indexing_by_absolute_window() {
        let mut c = WindowedCounter::new(2);
        c.record(1); // window 0
        c.advance();
        c.record(2); // window 1
        assert_eq!(c.at(0), Some(1));
        assert_eq!(c.at(1), Some(2));
        assert_eq!(c.at(2), None);
        c.advance(); // window 0 expires
        assert_eq!(c.at(0), None);
        assert_eq!(c.at(1), Some(2));
        assert_eq!(c.at(2), Some(0));
    }

    #[test]
    fn counter_export_round_trips() {
        let mut c = WindowedCounter::new(3);
        for n in [5u64, 7, 11, 13] {
            c.record(n);
            c.advance();
        }
        c.record(17);
        let e = c.export();
        let json = serde_json::to_string(&e).expect("serialize");
        let back: WindowedCounterExport = serde_json::from_str(&json).expect("parse");
        let rebuilt = WindowedCounter::from_export(&back);
        assert_eq!(rebuilt, c);
        assert_eq!(rebuilt.sum(), c.sum());
        assert_eq!(rebuilt.newest_index(), c.newest_index());
    }

    #[test]
    fn counter_merge_aligns_by_absolute_index() {
        // Two workers advancing in lockstep, each seeing part of the
        // event stream.
        let mut a = WindowedCounter::new(3);
        let mut b = WindowedCounter::new(3);
        let mut whole = WindowedCounter::new(3);
        for (x, y) in [(1u64, 2u64), (3, 4), (5, 6), (7, 8)] {
            a.record(x);
            b.record(y);
            whole.record(x + y);
            a.advance();
            b.advance();
            whole.advance();
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn counter_equality_ignores_ring_rotation() {
        // A counter that wrapped its ring and the rebuilt export hold
        // identical windows at different ring phases: equal. Any
        // differing window content or newest index: unequal.
        let mut c = WindowedCounter::new(3);
        for n in [5u64, 7, 11, 13] {
            c.record(n);
            c.advance();
        }
        c.record(17);
        let rebuilt = WindowedCounter::from_export(&c.export());
        assert_eq!(rebuilt, c);

        let mut different = rebuilt.clone();
        different.record(1);
        assert_ne!(different, c);
        let mut advanced = WindowedCounter::from_export(&c.export());
        advanced.advance();
        assert_ne!(advanced, c);
        assert_ne!(WindowedCounter::new(2), WindowedCounter::new(3));
    }

    #[test]
    fn counter_merge_with_lagging_side() {
        let mut a = WindowedCounter::new(2);
        a.record(1);
        a.advance(); // a is at window 1
        a.record(100);
        let mut b = WindowedCounter::new(2);
        b.record(7); // b still at window 0
        a.merge(&b);
        assert_eq!(a.at(0), Some(8));
        assert_eq!(a.at(1), Some(100));
        assert_eq!(a.newest_index(), 1);
    }

    #[test]
    fn histogram_sliding_quantile_tracks_recent_windows() {
        let mut w = WindowedHistogram::new(2);
        for _ in 0..100 {
            w.record(1000.0);
        }
        w.advance();
        for _ in 0..100 {
            w.record(1.0);
        }
        // Both windows retained: p99 still sees the old spike.
        assert!(w.quantile(0.99) > 500.0);
        w.advance();
        for _ in 0..100 {
            w.record(1.0);
        }
        // The spike window expired; p99 over the last N events is calm.
        let p99 = w.quantile(0.99);
        assert!(p99 < 2.0, "p99 = {p99}");
    }

    #[test]
    fn histogram_export_round_trips() {
        let mut w = WindowedHistogram::new(3);
        for v in [0.5, 2.0, 8.0] {
            w.record(v);
            w.advance();
        }
        w.record(32.0);
        let e = w.export();
        let json = serde_json::to_string(&e).expect("serialize");
        let back: WindowedHistogramExport = serde_json::from_str(&json).expect("parse");
        let rebuilt = WindowedHistogram::from_export(&back);
        assert_eq!(rebuilt.export(), w.export());
        assert_eq!(rebuilt.count(), w.count());
        assert_eq!(rebuilt.aggregate().export(), w.aggregate().export());
    }

    #[test]
    fn histogram_merge_matches_single_recorder() {
        let mut a = WindowedHistogram::new(3);
        let mut b = WindowedHistogram::new(3);
        let mut whole = WindowedHistogram::new(3);
        let streams = [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0), (4.0, 40.0)];
        for (x, y) in streams {
            a.record(x);
            whole.record(x);
            b.record(y);
            whole.record(y);
            a.advance();
            b.advance();
            whole.advance();
        }
        a.merge(&b);
        assert_eq!(a.aggregate().export(), whole.aggregate().export());
        assert_eq!(a.export().newest, whole.export().newest);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let c = WindowedCounter::new(0);
        assert_eq!(c.windows(), 1);
        let w = WindowedHistogram::new(0);
        assert_eq!(w.windows(), 1);
    }
}
