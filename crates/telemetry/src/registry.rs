//! The thread-safe metrics registry and the process-wide global instance.

use crate::event::{unix_millis, Event, EventKind, Level};
use crate::fleet::{GaugeSample, MetricsExport};
use crate::histogram::{HistogramSnapshot, LogLinearHistogram};
use crate::profile::Profile;
use crate::sink::{JsonlSink, Sink, StderrSink};
use crate::trace::TraceSink;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Sentinel for "no sinks installed": no event level passes.
const NO_SINKS: u8 = u8::MAX;

/// A thread-safe registry of counters, gauges, histograms, span timings,
/// and event sinks. One process-wide instance lives behind [`global`]; unit
/// tests can create private instances.
pub struct Registry {
    enabled: AtomicBool,
    /// Cached `max(sink.verbosity())` as a `u8`, or [`NO_SINKS`]; lets the
    /// hot path skip event construction with one atomic load.
    max_verbosity: AtomicU8,
    counters: Mutex<HashMap<String, u64>>,
    /// Gauge values paired with the unix-ms timestamp of their last set,
    /// so fleet merges can take latest-by-timestamp across workers.
    gauges: Mutex<HashMap<String, (f64, u64)>>,
    histograms: Mutex<HashMap<String, LogLinearHistogram>>,
    spans: Mutex<HashMap<String, LogLinearHistogram>>,
    /// `Arc` rather than `Box` so flushing can iterate a cloned list with
    /// the lock released — a sink's `flush` may itself emit telemetry
    /// (e.g. the trace sink reporting a failed write), which re-enters the
    /// registry and would deadlock against a held write lock.
    sinks: RwLock<Vec<Arc<dyn Sink>>>,
    start: Instant,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .field("sinks", &self.sinks.read().len())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates an enabled registry with no sinks.
    pub fn new() -> Registry {
        Registry {
            enabled: AtomicBool::new(true),
            max_verbosity: AtomicU8::new(NO_SINKS),
            counters: Mutex::new(HashMap::new()),
            gauges: Mutex::new(HashMap::new()),
            histograms: Mutex::new(HashMap::new()),
            spans: Mutex::new(HashMap::new()),
            sinks: RwLock::new(Vec::new()),
            start: Instant::now(),
        }
    }

    /// Whether recording is enabled at all. When disabled, every telemetry
    /// call is a single atomic load and an early return.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables all recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Installs a sink.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        let mut sinks = self.sinks.write();
        sinks.push(Arc::from(sink));
        let max = sinks.iter().map(|s| s.verbosity() as u8).max().unwrap_or(NO_SINKS);
        self.max_verbosity.store(max, Ordering::Relaxed);
    }

    /// Removes every sink (metrics keep accumulating). The drained sinks
    /// are flushed *after* the write lock is released, so a flush that
    /// emits telemetry (a failed trace write, say) cannot deadlock.
    pub fn clear_sinks(&self) {
        let drained: Vec<Arc<dyn Sink>> = {
            let mut sinks = self.sinks.write();
            self.max_verbosity.store(NO_SINKS, Ordering::Relaxed);
            std::mem::take(&mut *sinks)
        };
        for sink in &drained {
            sink.flush();
        }
    }

    /// True when an event at `level` would reach at least one sink. Cheap:
    /// two atomic loads, no locks.
    pub fn would_emit(&self, level: Level) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let max = self.max_verbosity.load(Ordering::Relaxed);
        max != NO_SINKS && (level as u8) <= max
    }

    /// Adds `delta` to the named counter. When a trace-verbosity sink is
    /// installed, the increment is also emitted as an
    /// [`EventKind::Counter`] event (the trace sink renders those as
    /// counter tracks); otherwise this stays a mutex-guarded add.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let value = {
            let mut counters = self.counters.lock();
            match counters.get_mut(name) {
                Some(v) => {
                    *v += delta;
                    *v
                }
                None => {
                    counters.insert(name.to_string(), delta);
                    delta
                }
            }
        };
        if self.would_emit(Level::Trace) {
            let mut fields = serde_json::Map::new();
            fields.insert("delta".to_string(), serde_json::Value::from(delta));
            fields.insert("value".to_string(), serde_json::Value::from(value));
            self.emit(Level::Trace, EventKind::Counter, name, fields);
        }
    }

    /// Sets the named gauge. Like [`Registry::counter_add`], trace-level
    /// sinks additionally receive an [`EventKind::Gauge`] event per update.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.gauges.lock().insert(name.to_string(), (value, unix_millis()));
        if self.would_emit(Level::Trace) {
            let mut fields = serde_json::Map::new();
            fields.insert("value".to_string(), serde_json::Value::from(value));
            self.emit(Level::Trace, EventKind::Gauge, name, fields);
        }
    }

    /// Records one sample into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut hists = self.histograms.lock();
        match hists.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = LogLinearHistogram::new();
                h.record(value);
                hists.insert(name.to_string(), h);
            }
        }
    }

    /// Records one completed span occurrence (seconds) under its full
    /// hierarchical path, e.g. `"capture/drai/range_fft"`.
    pub fn record_span(&self, path: &str, seconds: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut spans = self.spans.lock();
        match spans.get_mut(path) {
            Some(h) => h.record(seconds),
            None => {
                let mut h = LogLinearHistogram::new();
                h.record(seconds);
                spans.insert(path.to_string(), h);
            }
        }
    }

    /// Delivers an event to every sink whose verbosity admits it.
    pub fn emit(
        &self,
        level: Level,
        kind: EventKind,
        name: &str,
        fields: serde_json::Map<String, serde_json::Value>,
    ) {
        if !self.would_emit(level) {
            return;
        }
        let event = Event::now(level, kind, name, fields);
        for sink in self.sinks.read().iter() {
            if level <= sink.verbosity() {
                sink.record(&event);
            }
        }
    }

    /// Flushes every sink. The sink list is cloned and the lock released
    /// before any `flush` runs, so sinks are free to emit telemetry from
    /// their flush paths.
    pub fn flush(&self) {
        let sinks: Vec<Arc<dyn Sink>> = self.sinks.read().clone();
        for sink in &sinks {
            sink.flush();
        }
    }

    /// Counter value (0 when never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.lock().get(name).map(|(v, _)| *v)
    }

    /// Full-fidelity export of every counter, gauge, histogram, and span
    /// for fleet shipping: unlike [`Registry::snapshot`], histograms
    /// travel in lossless bucket form so they can be merged exactly.
    pub fn export_metrics(&self) -> MetricsExport {
        MetricsExport {
            counters: self.counters.lock().iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, &(value, ts_ms))| (k.clone(), GaugeSample { value, ts_ms }))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, h)| (k.clone(), h.export()))
                .collect(),
            spans: self.spans.lock().iter().map(|(k, h)| (k.clone(), h.export())).collect(),
        }
    }

    /// Snapshot of one span path's timing histogram (seconds), if recorded.
    pub fn span_snapshot(&self, path: &str) -> Option<HistogramSnapshot> {
        self.spans.lock().get(path).map(LogLinearHistogram::snapshot)
    }

    /// Snapshot of one metric histogram, if recorded.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        self.histograms.lock().get(name).map(LogLinearHistogram::snapshot)
    }

    /// All recorded span paths.
    pub fn span_paths(&self) -> Vec<String> {
        let mut paths: Vec<String> = self.spans.lock().keys().cloned().collect();
        paths.sort();
        paths
    }

    /// The merged span call tree: inclusive/exclusive wall time, call
    /// counts, and per-node quantiles, aggregated from every span path
    /// recorded so far. The tree *structure* is worker-count-stable (the
    /// `mmwave-exec` pool propagates span context onto its workers); only
    /// the times vary run to run.
    pub fn profile(&self) -> Profile {
        let spans: BTreeMap<String, HistogramSnapshot> = self
            .spans
            .lock()
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        Profile::from_spans(&spans)
    }

    /// Full serializable snapshot of everything the registry accumulated:
    /// counters, gauges, metric histograms, per-span timing aggregates,
    /// and the merged [`Registry::profile`] call tree.
    pub fn snapshot(&self) -> serde_json::Value {
        let counters: BTreeMap<String, u64> =
            self.counters.lock().iter().map(|(k, v)| (k.clone(), *v)).collect();
        let gauges: BTreeMap<String, f64> =
            self.gauges.lock().iter().map(|(k, &(v, _))| (k.clone(), v)).collect();
        let histograms: BTreeMap<String, HistogramSnapshot> = self
            .histograms
            .lock()
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        let spans: BTreeMap<String, serde_json::Value> = self
            .spans
            .lock()
            .iter()
            .map(|(k, h)| {
                let s = h.snapshot();
                (
                    k.clone(),
                    serde_json::json!({
                        "calls": s.count,
                        "total_ms": 1e3 * s.sum,
                        "mean_ms": 1e3 * s.mean,
                        "p50_ms": 1e3 * s.p50,
                        "p95_ms": 1e3 * s.p95,
                        "p99_ms": 1e3 * s.p99,
                        "max_ms": 1e3 * s.max,
                    }),
                )
            })
            .collect();
        serde_json::json!({
            "uptime_ms": self.start.elapsed().as_millis() as u64,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": spans,
            "profile": self.profile().to_json(),
        })
    }

    /// A compact snapshot for embedding in journal entries: counters plus
    /// per-span call counts and total milliseconds.
    pub fn snapshot_brief(&self) -> serde_json::Value {
        let counters: BTreeMap<String, u64> =
            self.counters.lock().iter().map(|(k, v)| (k.clone(), *v)).collect();
        let spans: BTreeMap<String, serde_json::Value> = self
            .spans
            .lock()
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    serde_json::json!({
                        "calls": h.count(),
                        "total_ms": 1e3 * h.sum(),
                    }),
                )
            })
            .collect();
        serde_json::json!({ "counters": counters, "spans": spans })
    }

    /// Renders the end-of-run stage-time table: one row per span path,
    /// sorted by total wall time, with call counts, quantiles, and
    /// throughput (`calls / total seconds` — frames/sec for per-frame
    /// spans). Counters are appended below the table.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut rows: Vec<(String, HistogramSnapshot)> = self
            .spans
            .lock()
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        rows.sort_by(|a, b| b.1.sum.total_cmp(&a.1.sum));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>11} {:>9} {:>9} {:>9}",
            "stage", "calls", "total(ms)", "mean(ms)", "p95(ms)", "rate(/s)"
        );
        if rows.is_empty() {
            let _ = writeln!(out, "(no spans recorded)");
        }
        for (path, s) in &rows {
            let rate = if s.sum > 0.0 { s.count as f64 / s.sum } else { 0.0 };
            let _ = writeln!(
                out,
                "{:<44} {:>8} {:>11.1} {:>9.3} {:>9.3} {:>9.1}",
                path,
                s.count,
                1e3 * s.sum,
                1e3 * s.mean,
                1e3 * s.p95,
                rate
            );
        }
        let counters: BTreeMap<String, u64> =
            self.counters.lock().iter().map(|(k, v)| (k.clone(), *v)).collect();
        if !counters.is_empty() {
            let _ = writeln!(out, "{:<44} {:>8}", "counter", "value");
            for (name, value) in &counters {
                let _ = writeln!(out, "{name:<44} {value:>8}");
            }
        }
        if !rows.is_empty() {
            out.push('\n');
            out.push_str(&self.profile().hotspot_table(12));
        }
        out
    }
}

/// How [`configure`] sets the global registry up.
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// Disable all recording (the `<1 %` overhead path).
    pub disabled: bool,
    /// Verbosity of the human-readable stderr sink; `None` installs no
    /// stderr sink.
    pub stderr_verbosity: Option<Level>,
    /// Path of a JSON-lines metrics file; `None` installs no file sink.
    pub metrics_out: Option<PathBuf>,
    /// Path of a Chrome/Perfetto `trace.json` file; `None` installs no
    /// trace sink. Installing one raises the effective verbosity to
    /// trace, so every span occurrence is captured.
    pub trace_out: Option<PathBuf>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry. On first access it configures itself from the
/// environment, so instrumented libraries need no explicit setup:
///
/// * `MMWAVE_TELEMETRY=off|0|false` disables all recording;
/// * `MMWAVE_LOG_LEVEL=<error|warn|info|debug|trace>` sets the stderr
///   sink's verbosity (default `warn`);
/// * `MMWAVE_METRICS_OUT=<path>` additionally streams every event to a
///   JSON-lines file;
/// * `MMWAVE_TRACE_OUT=<path>` additionally records a Chrome/Perfetto
///   `trace.json` timeline.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(|| {
        let registry = Registry::new();
        if let Ok(v) = std::env::var("MMWAVE_TELEMETRY") {
            if matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false") {
                registry.set_enabled(false);
            }
        }
        let stderr_level = std::env::var("MMWAVE_LOG_LEVEL")
            .ok()
            .and_then(|v| v.parse::<Level>().ok())
            .unwrap_or(Level::Warn);
        registry.add_sink(Box::new(StderrSink::new(stderr_level)));
        if let Ok(path) = std::env::var("MMWAVE_METRICS_OUT") {
            if !path.is_empty() {
                if let Ok(sink) = JsonlSink::create(&path) {
                    registry.add_sink(Box::new(sink));
                }
            }
        }
        if let Ok(path) = std::env::var("MMWAVE_TRACE_OUT") {
            if !path.is_empty() {
                if let Ok(sink) = TraceSink::create(&path) {
                    registry.add_sink(Box::new(sink));
                }
            }
        }
        registry
    })
}

/// Reconfigures the global registry's sinks and enablement (the CLI entry
/// point; wins over the environment-derived defaults).
///
/// # Errors
///
/// Returns any I/O error from creating the metrics file.
pub fn configure(config: &TelemetryConfig) -> io::Result<()> {
    let registry = global();
    registry.set_enabled(!config.disabled);
    registry.clear_sinks();
    if let Some(level) = config.stderr_verbosity {
        registry.add_sink(Box::new(StderrSink::new(level)));
    }
    if let Some(path) = &config.metrics_out {
        registry.add_sink(Box::new(JsonlSink::create(path)?));
    }
    if let Some(path) = &config.trace_out {
        registry.add_sink(Box::new(TraceSink::create(path)?));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.counter_add("frames", 3);
        r.counter_add("frames", 4);
        assert_eq!(r.counter_value("frames"), 7);
        assert_eq!(r.counter_value("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        r.gauge_set("lr", 0.1);
        r.gauge_set("lr", 0.05);
        assert_eq!(r.gauge_value("lr"), Some(0.05));
        assert_eq!(r.gauge_value("missing"), None);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        r.set_enabled(false);
        r.counter_add("frames", 1);
        r.gauge_set("lr", 1.0);
        r.observe("loss", 1.0);
        r.record_span("capture", 0.5);
        assert_eq!(r.counter_value("frames"), 0);
        assert_eq!(r.gauge_value("lr"), None);
        assert!(r.histogram_snapshot("loss").is_none());
        assert!(r.span_snapshot("capture").is_none());
        assert!(!r.would_emit(Level::Error));
    }

    #[test]
    fn would_emit_respects_sink_verbosity() {
        let r = Registry::new();
        assert!(!r.would_emit(Level::Error), "no sinks: nothing passes");
        r.add_sink(Box::new(StderrSink::new(Level::Info)));
        assert!(r.would_emit(Level::Warn));
        assert!(r.would_emit(Level::Info));
        assert!(!r.would_emit(Level::Debug));
        r.clear_sinks();
        assert!(!r.would_emit(Level::Error));
    }

    #[test]
    fn snapshot_contains_all_sections() {
        let r = Registry::new();
        r.counter_add("frames", 2);
        r.gauge_set("lr", 0.01);
        r.observe("loss", 0.7);
        r.record_span("capture", 0.25);
        let snap = r.snapshot();
        assert_eq!(snap["counters"]["frames"], 2);
        assert_eq!(snap["gauges"]["lr"], 0.01);
        assert_eq!(snap["histograms"]["loss"]["count"], 1);
        assert_eq!(snap["spans"]["capture"]["calls"], 1);
        let brief = r.snapshot_brief();
        assert_eq!(brief["counters"]["frames"], 2);
        assert_eq!(brief["spans"]["capture"]["calls"], 1);
    }

    #[test]
    fn export_metrics_is_lossless() {
        let r = Registry::new();
        r.counter_add("frames", 2);
        r.gauge_set("lr", 0.01);
        r.observe("loss", 0.7);
        r.record_span("capture", 0.25);
        r.record_span("capture", 0.5);
        let export = r.export_metrics();
        assert_eq!(export.counters["frames"], 2);
        assert_eq!(export.gauges["lr"].value, 0.01);
        assert!(export.gauges["lr"].ts_ms > 0);
        assert_eq!(export.histograms["loss"].count, 1);
        let rebuilt = LogLinearHistogram::from_export(&export.spans["capture"]);
        assert_eq!(Some(rebuilt.snapshot()), r.span_snapshot("capture"));
    }

    #[test]
    fn summary_table_lists_spans_counters_and_hotspots() {
        let r = Registry::new();
        r.record_span("capture", 0.5);
        r.record_span("capture/drai", 0.1);
        r.counter_add("radar.frames", 12);
        let table = r.summary_table();
        assert!(table.contains("capture"));
        assert!(table.contains("capture/drai"));
        assert!(table.contains("radar.frames"));
        assert!(table.contains("rate(/s)"));
        assert!(table.contains("hotspot (exclusive time)"));
        assert!(table.contains("excl%"));
    }

    #[test]
    fn snapshot_contains_the_profile_tree() {
        let r = Registry::new();
        r.record_span("capture", 0.5);
        r.record_span("capture/drai", 0.1);
        let snap = r.snapshot();
        let profile = snap["profile"].as_array().expect("profile is an array of roots");
        assert_eq!(profile[0]["path"], "capture");
        assert_eq!(profile[0]["children"][0]["path"], "capture/drai");
        assert!(profile[0]["exclusive_ms"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn counters_and_gauges_emit_events_for_trace_sinks() {
        use crate::sink::read_jsonl_events;
        let r = Registry::new();
        let path = std::env::temp_dir()
            .join(format!("mmwave_registry_counter_events_{}.jsonl", std::process::id()));
        r.add_sink(Box::new(JsonlSink::create(&path).unwrap()));
        r.counter_add("frames", 2);
        r.counter_add("frames", 3);
        r.gauge_set("workers", 4.0);
        r.flush();
        let events = read_jsonl_events(&path).unwrap();
        let counters: Vec<_> =
            events.iter().filter(|e| e.kind == EventKind::Counter).collect();
        assert_eq!(counters.len(), 2);
        assert_eq!(counters[1].fields["delta"], 3);
        assert_eq!(counters[1].fields["value"], 5, "value is the post-increment total");
        let gauge = events.iter().find(|e| e.kind == EventKind::Gauge).expect("gauge event");
        assert_eq!(gauge.fields["value"], 4.0);
        std::fs::remove_file(&path).ok();
    }

    /// A sink whose `flush` re-enters the registry, as the trace sink does
    /// when reporting a failed write.
    struct EmittingSink(Arc<Registry>);

    impl Sink for EmittingSink {
        fn verbosity(&self) -> Level {
            Level::Trace
        }

        fn record(&self, _event: &Event) {}

        fn flush(&self) {
            self.0.emit(Level::Warn, EventKind::Log, "from-flush", serde_json::Map::new());
            self.0.counter_add("flush.reentry", 1);
        }
    }

    #[test]
    fn sinks_may_emit_telemetry_from_flush_without_deadlocking() {
        let r = Arc::new(Registry::new());
        r.add_sink(Box::new(EmittingSink(Arc::clone(&r))));
        // Under the old flush-under-lock scheme, `clear_sinks` held the
        // write lock across `flush`, so the re-entrant `emit` deadlocked.
        r.flush();
        r.clear_sinks();
        assert_eq!(r.counter_value("flush.reentry"), 2);
        assert!(!r.would_emit(Level::Error), "sinks really were drained");
    }

    #[test]
    fn counters_emit_nothing_without_a_trace_sink() {
        // A warn-verbosity sink must not trigger counter events (nor pay
        // for building them): would_emit(Trace) is false.
        let r = Registry::new();
        r.add_sink(Box::new(StderrSink::new(Level::Warn)));
        assert!(!r.would_emit(Level::Trace));
        r.counter_add("frames", 1);
        assert_eq!(r.counter_value("frames"), 1);
    }
}
