//! Zero-external-dependency telemetry for the mmWave attack pipeline:
//! hierarchical span timers, counters / gauges / log-linear histograms,
//! a leveled structured logger, and pluggable sinks.
//!
//! # Design
//!
//! Everything funnels through one process-wide [`registry::Registry`]:
//!
//! * **Spans** ([`span`], [`span_at`]) are RAII timers. They nest via a
//!   thread-local stack, so a span opened inside another records under the
//!   `/`-joined parent path (`"capture/drai/range_fft"`). Timings feed
//!   fixed-memory [`histogram::LogLinearHistogram`]s with `p50/p95/p99`
//!   accurate to ~1.6 % relative error.
//! * **Metrics** ([`counter`], [`gauge`], [`observe`]) accumulate in the
//!   registry and appear in [`snapshot`] and the end-of-run
//!   [`summary_table`].
//! * **Events** ([`log`], [`event`], and the [`error!`] / [`warn!`] /
//!   [`info!`] / [`debug!`] / [`trace!`] macros) stream to every installed
//!   [`Sink`] whose verbosity admits them: a human-readable stderr sink,
//!   a JSON-lines file ([`read_jsonl_events`] parses it back, tolerating a
//!   torn tail), and/or a Chrome/Perfetto [`TraceSink`] timeline.
//! * **Profiles** ([`profile`]) fold the flat span table into a merged
//!   call tree with inclusive/exclusive wall time; the end-of-run
//!   [`summary_table`] appends its top hotspots and [`snapshot`] carries
//!   the full tree under `"profile"`.
//!
//! # Configuration
//!
//! The registry self-configures from the environment on first use
//! (`MMWAVE_TELEMETRY=off`, `MMWAVE_LOG_LEVEL=<level>`,
//! `MMWAVE_METRICS_OUT=<path>`, `MMWAVE_TRACE_OUT=<path>`); a CLI
//! overrides that with [`configure`]. When disabled, every
//! instrumentation call is one relaxed atomic load — the pipeline's hot
//! path pays well under 1 % overhead.
//!
//! # Examples
//!
//! ```
//! let _run = mmwave_telemetry::span_at("demo_stage", mmwave_telemetry::Level::Debug);
//! mmwave_telemetry::counter("demo.frames", 32);
//! mmwave_telemetry::observe("demo.loss", 0.71);
//! drop(_run);
//! let table = mmwave_telemetry::summary_table();
//! assert!(table.contains("demo_stage"));
//! ```

pub mod event;
pub mod fleet;
pub mod histogram;
pub mod profile;
pub mod registry;
pub mod sink;
pub mod span;
pub mod trace;
pub mod window;

pub use event::{process_micros, thread_id, unix_millis, Event, EventKind, Level};
pub use fleet::{
    merge_metrics, merge_shards, merged_profile, robust_threshold, stitch_traces, FleetMetrics,
    GaugeSample, MetricsExport, WorkerShard, WorkerTrace,
};
pub use histogram::{HistogramExport, HistogramSnapshot, LogLinearHistogram};
pub use profile::{Profile, ProfileNode};
pub use registry::{configure, global, Registry, TelemetryConfig};
pub use sink::{read_jsonl_events, JsonlSink, Sink, StderrSink};
pub use span::{current_path, enter_context, span, span_at, ContextGuard, SpanGuard};
pub use trace::{read_trace_file, TraceSink};
pub use window::{
    WindowedCounter, WindowedCounterExport, WindowedHistogram, WindowedHistogramExport,
};

/// The merged span call tree (inclusive / exclusive time, call counts,
/// quantiles) aggregated from everything recorded so far.
pub fn profile() -> Profile {
    registry::global().profile()
}

/// Adds `delta` to a named monotonically increasing counter.
pub fn counter(name: &str, delta: u64) {
    registry::global().counter_add(name, delta);
}

/// Sets a named gauge to its latest value.
pub fn gauge(name: &str, value: f64) {
    registry::global().gauge_set(name, value);
}

/// Records one sample into a named histogram.
pub fn observe(name: &str, value: f64) {
    registry::global().observe(name, value);
}

/// Emits a structured log event with a message. Prefer the [`error!`] /
/// [`warn!`] / [`info!`] / [`debug!`] / [`trace!`] macros, which capture
/// the module path and format lazily.
pub fn log(level: Level, target: &str, message: String) {
    let registry = registry::global();
    if !registry.would_emit(level) {
        return;
    }
    let mut fields = serde_json::Map::new();
    fields.insert("message".to_string(), serde_json::Value::String(message));
    registry.emit(level, EventKind::Log, target, fields);
}

/// Emits a structured event of any kind with arbitrary fields.
pub fn event(
    level: Level,
    kind: EventKind,
    name: &str,
    fields: serde_json::Map<String, serde_json::Value>,
) {
    registry::global().emit(level, kind, name, fields);
}

/// True when an event at `level` would reach at least one sink; use to
/// skip building expensive payloads.
pub fn enabled(level: Level) -> bool {
    registry::global().would_emit(level)
}

/// Full serializable snapshot of every counter, gauge, histogram, and span
/// aggregate recorded so far.
pub fn snapshot() -> serde_json::Value {
    registry::global().snapshot()
}

/// Compact snapshot (counters + span call/total-ms) for embedding in
/// journal entries.
pub fn snapshot_brief() -> serde_json::Value {
    registry::global().snapshot_brief()
}

/// Renders the end-of-run stage-time table: per-span calls, total / mean /
/// p95 wall time, and throughput, followed by the counters.
pub fn summary_table() -> String {
    registry::global().summary_table()
}

/// Emits the end-of-run [`EventKind::Summary`] event carrying the full
/// [`snapshot`], flushes every sink, and returns the human-readable
/// [`summary_table`].
pub fn finish() -> String {
    let registry = registry::global();
    if registry.would_emit(Level::Info) {
        let mut fields = serde_json::Map::new();
        if let serde_json::Value::Object(snap) = registry.snapshot() {
            fields = snap;
        }
        registry.emit(Level::Info, EventKind::Summary, "run.summary", fields);
    }
    registry.flush();
    registry.summary_table()
}

/// Logs at [`Level::Error`] with `format!` syntax.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Error) {
            $crate::log($crate::Level::Error, module_path!(), format!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`] with `format!` syntax.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Warn) {
            $crate::log($crate::Level::Warn, module_path!(), format!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`] with `format!` syntax.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Info) {
            $crate::log($crate::Level::Info, module_path!(), format!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`] with `format!` syntax.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Debug) {
            $crate::log($crate::Level::Debug, module_path!(), format!($($arg)*));
        }
    };
}

/// Logs at [`Level::Trace`] with `format!` syntax.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Trace) {
            $crate::log($crate::Level::Trace, module_path!(), format!($($arg)*));
        }
    };
}
