//! Chrome/Perfetto trace export.
//!
//! [`TraceSink`] renders the telemetry event stream into the Chrome trace
//! JSON-array format, loadable by <https://ui.perfetto.dev> and
//! `chrome://tracing`:
//!
//! * [`crate::EventKind::Span`] events become `ph:"X"` *complete* events —
//!   the span close already carries its process-relative start (`start_us`),
//!   duration, and executing thread id, so no open/close pairing is needed
//!   and `mmwave-exec` worker tasks land on their own timeline rows;
//! * [`crate::EventKind::Counter`] / [`crate::EventKind::Gauge`] events
//!   become `ph:"C"` counter tracks;
//! * everything else (logs, faults, campaign points) becomes `ph:"i"`
//!   thread-scoped instant markers;
//! * the first event from each thread is preceded by a `ph:"M"`
//!   `thread_name` metadata record, so Perfetto labels `mmwave-exec-3`
//!   instead of a bare tid.
//!
//! Entries buffer in memory and the whole file is (re)written as one valid
//! JSON array on every [`Sink::flush`] — the registry flushes on
//! reconfiguration and at `finish()`, so a run that ends normally always
//! leaves a well-formed file, while a killed run leaves whatever the last
//! flush wrote (still a valid array). The rewrite goes through a sibling
//! temp file and an atomic rename, so even a kill *mid-flush* cannot tear
//! the trace; a flush that fails to write reports itself via `stderr`, a
//! `trace.write_failed` counter, and a warn-level event rather than
//! silently dropping the trace. A cap of [`TraceSink::MAX_EVENTS`] entries
//! bounds memory; overflow is counted and reported once.

use crate::event::{process_micros, thread_id, Event, EventKind, Level};
use crate::sink::Sink;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrent flushes' temp files (the serialize step runs
/// under the state lock, but the write itself deliberately does not).
static FLUSH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` via a same-directory temp file, fsync, and
/// rename, so readers only ever observe the old or the new trace in full.
/// (`mmwave-store` owns the general-purpose version of this; telemetry
/// sits below it in the crate graph and keeps a private copy.)
fn write_file_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("trace.json");
    let tmp = path.with_file_name(format!(
        "{name}.tmp-{}-{}",
        std::process::id(),
        FLUSH_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Buffers trace entries and writes them as a Chrome-trace JSON array.
pub struct TraceSink {
    path: PathBuf,
    state: Mutex<TraceState>,
}

struct TraceState {
    entries: Vec<serde_json::Value>,
    named_threads: HashSet<u64>,
    dropped: u64,
}

impl TraceSink {
    /// Hard cap on buffered entries (~hundreds of MB of JSON at the
    /// extreme); events past the cap are dropped and counted.
    pub const MAX_EVENTS: usize = 2_000_000;

    /// Creates the sink, truncating any existing file at `path` (parent
    /// directories are created as needed) so a crash before the first
    /// flush cannot leave a stale trace from an earlier run.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directories or the file.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<TraceSink> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        // Truncate eagerly; real content lands on flush.
        std::fs::write(&path, "[]")?;
        Ok(TraceSink {
            path,
            state: Mutex::new(TraceState {
                entries: Vec::new(),
                named_threads: HashSet::new(),
                dropped: 0,
            }),
        })
    }

    /// The output path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn push(state: &mut TraceState, entry: serde_json::Value) {
        if state.entries.len() >= TraceSink::MAX_EVENTS {
            state.dropped += 1;
            return;
        }
        state.entries.push(entry);
    }

    /// Ensures a `thread_name` metadata record precedes the first entry of
    /// each thread. Runs on the emitting thread, so the name is exact.
    fn name_thread(state: &mut TraceState, pid: u32, tid: u64) {
        if !state.named_threads.insert(tid) {
            return;
        }
        let current = std::thread::current();
        let name = current.name().unwrap_or("main").to_string();
        Self::push(
            state,
            serde_json::json!({
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": { "name": name },
            }),
        );
    }
}

impl Sink for TraceSink {
    fn verbosity(&self) -> Level {
        Level::Trace
    }

    fn record(&self, event: &Event) {
        let pid = std::process::id();
        let mut state = self.state.lock();
        match event.kind {
            EventKind::Span => {
                // Emitted at span close; start/duration/tid ride in the
                // fields (see `crate::span`). Fall back to "now, zero
                // length, this thread" for hand-built events.
                let dur = event.fields.get("duration_us").and_then(|v| v.as_u64()).unwrap_or(0);
                let ts = event
                    .fields
                    .get("start_us")
                    .and_then(|v| v.as_u64())
                    .unwrap_or_else(process_micros);
                let tid =
                    event.fields.get("tid").and_then(|v| v.as_u64()).unwrap_or_else(thread_id);
                Self::name_thread(&mut state, pid, tid);
                Self::push(
                    &mut state,
                    serde_json::json!({
                        "ph": "X",
                        "name": event.name,
                        "cat": "span",
                        "pid": pid,
                        "tid": tid,
                        "ts": ts,
                        "dur": dur,
                    }),
                );
            }
            EventKind::Counter | EventKind::Gauge => {
                let Some(value) = event.fields.get("value") else {
                    return;
                };
                let tid = thread_id();
                Self::name_thread(&mut state, pid, tid);
                Self::push(
                    &mut state,
                    serde_json::json!({
                        "ph": "C",
                        "name": event.name,
                        "cat": "metric",
                        "pid": pid,
                        "tid": tid,
                        "ts": process_micros(),
                        "args": { "value": value },
                    }),
                );
            }
            EventKind::Summary => {
                // The end-of-run snapshot is huge and has a JSONL home;
                // keep traces lean.
            }
            _ => {
                let tid = thread_id();
                Self::name_thread(&mut state, pid, tid);
                Self::push(
                    &mut state,
                    serde_json::json!({
                        "ph": "i",
                        "name": event.name,
                        "cat": format!("{:?}", event.kind).to_lowercase(),
                        "pid": pid,
                        "tid": tid,
                        "ts": process_micros(),
                        "s": "t",
                        "args": event.fields,
                    }),
                );
            }
        }
    }

    fn flush(&self) {
        // Serialize under the state lock, then write with the lock released:
        // the failure path below emits telemetry, which must be able to
        // re-enter this sink's `record` without deadlocking.
        let (bytes, dropped) = {
            let state = self.state.lock();
            let mut buf = Vec::with_capacity(2 + 64 * state.entries.len());
            buf.push(b'[');
            for (i, entry) in state.entries.iter().enumerate() {
                if i > 0 {
                    buf.extend_from_slice(b",\n");
                }
                // Infallible: `serde_json::Value` into a Vec cannot error.
                let _ = serde_json::to_writer(&mut buf, entry);
            }
            buf.push(b']');
            (buf, state.dropped)
        };
        if let Err(err) = write_file_atomic(&self.path, &bytes) {
            eprintln!("trace sink: failed to write {}: {err}", self.path.display());
            crate::counter("trace.write_failed", 1);
            crate::warn!("trace export to {} failed: {err}", self.path.display());
            return;
        }
        if dropped > 0 {
            eprintln!(
                "trace sink: dropped {dropped} events past the {}-event cap ({})",
                TraceSink::MAX_EVENTS,
                self.path.display()
            );
        }
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Parses a trace file back into its entries — test/tooling helper; the
/// file must be a well-formed JSON array (i.e. written by [`Sink::flush`]).
///
/// # Errors
///
/// Returns an error when the file cannot be read or is not a JSON array.
pub fn read_trace_file<P: AsRef<Path>>(path: P) -> io::Result<Vec<serde_json::Value>> {
    let text = std::fs::read_to_string(path)?;
    let value: serde_json::Value = serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    match value {
        serde_json::Value::Array(entries) => Ok(entries),
        _ => Err(io::Error::new(io::ErrorKind::InvalidData, "trace file is not a JSON array")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mmwave_trace_{tag}_{}.json", std::process::id()))
    }

    fn span_event(name: &str, start_us: u64, dur_us: u64, tid: u64) -> Event {
        let mut fields = serde_json::Map::new();
        fields.insert("duration_us".to_string(), serde_json::Value::from(dur_us));
        fields.insert("start_us".to_string(), serde_json::Value::from(start_us));
        fields.insert("tid".to_string(), serde_json::Value::from(tid));
        Event::now(Level::Trace, EventKind::Span, name, fields)
    }

    #[test]
    fn spans_become_complete_events_with_thread_metadata() {
        let path = temp_path("complete");
        let sink = TraceSink::create(&path).unwrap();
        sink.record(&span_event("capture/synthesis", 100, 40, 3));
        sink.record(&span_event("capture", 90, 60, 3));
        sink.flush();
        let entries = read_trace_file(&path).unwrap();
        let metas: Vec<_> = entries.iter().filter(|e| e["ph"] == "M").collect();
        assert_eq!(metas.len(), 1, "one thread => one thread_name record");
        let xs: Vec<_> = entries.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0]["name"], "capture/synthesis");
        assert_eq!(xs[0]["ts"], 100);
        assert_eq!(xs[0]["dur"], 40);
        assert_eq!(xs[0]["tid"], 3);
        for e in &xs {
            for key in ["pid", "tid", "ts", "name"] {
                assert!(!e[key].is_null(), "complete events need `{key}`");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn counters_become_counter_tracks_and_logs_become_instants() {
        let path = temp_path("kinds");
        let sink = TraceSink::create(&path).unwrap();
        let mut fields = serde_json::Map::new();
        fields.insert("delta".to_string(), serde_json::Value::from(2u64));
        fields.insert("value".to_string(), serde_json::Value::from(6u64));
        sink.record(&Event::now(Level::Trace, EventKind::Counter, "radar.frames", fields));
        let mut fields = serde_json::Map::new();
        fields.insert("message".to_string(), serde_json::Value::from("hello"));
        sink.record(&Event::now(Level::Info, EventKind::Log, "cli", fields));
        sink.flush();
        let entries = read_trace_file(&path).unwrap();
        let counter = entries.iter().find(|e| e["ph"] == "C").expect("counter entry");
        assert_eq!(counter["name"], "radar.frames");
        assert_eq!(counter["args"]["value"], 6);
        let instant = entries.iter().find(|e| e["ph"] == "i").expect("instant entry");
        assert_eq!(instant["name"], "cli");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_is_a_valid_json_array_before_any_flush_and_after_drop() {
        let path = temp_path("valid");
        let sink = TraceSink::create(&path).unwrap();
        // Even before a flush the placeholder parses.
        assert!(read_trace_file(&path).unwrap().is_empty());
        sink.record(&span_event("s", 0, 1, 0));
        drop(sink); // Drop flushes.
        assert_eq!(read_trace_file(&path).unwrap().iter().filter(|e| e["ph"] == "X").count(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_leaves_no_temp_files_behind() {
        let dir = std::env::temp_dir().join(format!("mmwave_trace_tmp_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let sink = TraceSink::create(&path).unwrap();
        sink.record(&span_event("s", 0, 1, 0));
        sink.flush();
        sink.flush();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["trace.json".to_string()], "temp files must not linger: {names:?}");
        drop(sink);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_failure_is_counted_not_silent() {
        let dir = std::env::temp_dir().join(format!("mmwave_trace_fail_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let sink = TraceSink::create(&path).unwrap();
        sink.record(&span_event("s", 0, 1, 0));
        // Replace the parent directory with a plain file so the temp-file
        // create inside it must fail.
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::write(&dir, b"not a directory").unwrap();
        let before = crate::registry::global().counter_value("trace.write_failed");
        sink.flush();
        let after = crate::registry::global().counter_value("trace.write_failed");
        assert!(after > before, "a failed trace write must bump trace.write_failed");
        std::fs::remove_file(&dir).ok();
        // Dropping the sink flushes once more; with the path gone that is
        // another counted failure, not a panic.
        drop(sink);
    }
}
