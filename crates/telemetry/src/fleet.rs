//! Fleet-level telemetry: serde shapes for per-worker metric shards and
//! the pure merge/stitch logic that folds N worker processes into one
//! view.
//!
//! This module holds no I/O. Workers export their registry through
//! [`crate::registry::Registry::export_metrics`] into a [`MetricsExport`],
//! wrap it in a [`WorkerShard`], and persist it however they like (the
//! `mmwave-store` crate sits *above* telemetry in the crate graph and owns
//! the durable writers). Aggregators load the shards back and call
//! [`merge_shards`] / [`stitch_traces`].
//!
//! Merge semantics:
//!
//! * **counters** sum;
//! * **gauges** keep the sample with the latest timestamp (ties keep the
//!   first shard's value, and shards arrive sorted by worker id, so the
//!   outcome is deterministic);
//! * **histograms and spans** merge bucket-wise via
//!   [`LogLinearHistogram::merge`] — exact, not approximated, because
//!   every process shares the same fixed bucket layout;
//! * **traces** stitch into one Chrome/Perfetto timeline where each
//!   worker becomes its own process lane (`pid` = lane index) named via a
//!   `process_name` metadata event, with per-shard clock anchors aligning
//!   the process-relative timestamps onto one axis.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

use crate::histogram::{HistogramExport, HistogramSnapshot, LogLinearHistogram};
use crate::profile::Profile;

/// A gauge value paired with the unix-millisecond timestamp of its last
/// `gauge_set`, so fleet merges can take latest-by-timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Latest value set.
    pub value: f64,
    /// Unix milliseconds when the value was set.
    pub ts_ms: u64,
}

/// Full-fidelity export of one registry: everything needed to merge this
/// process's telemetry into a fleet view without loss.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsExport {
    /// Monotonic counters by name.
    #[serde(default)]
    pub counters: BTreeMap<String, u64>,
    /// Timestamped gauges by name.
    #[serde(default)]
    pub gauges: BTreeMap<String, GaugeSample>,
    /// Value histograms by name, in lossless wire form.
    #[serde(default)]
    pub histograms: BTreeMap<String, HistogramExport>,
    /// Span-duration histograms by `/`-joined span path (seconds).
    #[serde(default)]
    pub spans: BTreeMap<String, HistogramExport>,
}

/// One worker's shipped telemetry shard: its metrics export plus enough
/// identity and clock metadata to merge and stitch it fleet-wide.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerShard {
    /// Worker id (`--worker-id` / `MMWAVE_WORKER_ID`).
    pub worker_id: String,
    /// OS process id of the worker.
    pub pid: u32,
    /// Git sha the worker was built from (`MMWAVE_GIT_SHA`, or
    /// `"unknown"`).
    pub git_sha: String,
    /// Unix milliseconds when this shard was written.
    pub ts_ms: u64,
    /// Process uptime in milliseconds at write time.
    pub uptime_ms: u64,
    /// `ts_ms - uptime_ms`: the unix time of the process's monotonic
    /// zero, used to align per-process trace timestamps onto one axis.
    pub clock_anchor_unix_ms: u64,
    /// True on the final ship before a clean exit.
    #[serde(default)]
    pub exited: bool,
    /// Id of the last task this worker completed, if any.
    #[serde(default)]
    pub last_task: Option<String>,
    /// The worker's full registry export.
    #[serde(default)]
    pub metrics: MetricsExport,
}

/// Identity row for one worker in a merged fleet view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerMeta {
    /// Worker id.
    pub worker_id: String,
    /// OS process id.
    pub pid: u32,
    /// Git sha the worker reported.
    pub git_sha: String,
    /// Unix milliseconds of the worker's last shipped shard.
    pub ts_ms: u64,
    /// True when the worker shipped a final (clean-exit) shard.
    pub exited: bool,
    /// Last task the worker completed, if any.
    pub last_task: Option<String>,
}

/// The merged telemetry of a whole fleet: one row of identity metadata
/// per worker plus the exact merge of every shard's metrics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetMetrics {
    /// One row per merged worker shard, sorted by worker id.
    pub workers: Vec<WorkerMeta>,
    /// The exact merge of all shards' metrics.
    pub merged: MetricsExport,
}

/// Merges `other` into `acc`: counters sum, gauges take
/// latest-by-timestamp (first wins ties), histograms and spans merge
/// bucket-wise and exactly.
pub fn merge_metrics(acc: &mut MetricsExport, other: &MetricsExport) {
    for (name, delta) in &other.counters {
        *acc.counters.entry(name.clone()).or_insert(0) += delta;
    }
    for (name, sample) in &other.gauges {
        match acc.gauges.get_mut(name) {
            Some(existing) => {
                if sample.ts_ms > existing.ts_ms {
                    *existing = *sample;
                }
            }
            None => {
                acc.gauges.insert(name.clone(), *sample);
            }
        }
    }
    for (dst, src) in [
        (&mut acc.histograms, &other.histograms),
        (&mut acc.spans, &other.spans),
    ] {
        for (name, export) in src {
            match dst.get_mut(name) {
                Some(existing) => {
                    let mut merged = LogLinearHistogram::from_export(existing);
                    merged.merge(&LogLinearHistogram::from_export(export));
                    *existing = merged.export();
                }
                None => {
                    dst.insert(name.clone(), export.clone());
                }
            }
        }
    }
}

/// Folds worker shards into one [`FleetMetrics`]. Shards are merged in
/// worker-id order regardless of input order, so the result is
/// deterministic.
pub fn merge_shards(shards: &[WorkerShard]) -> FleetMetrics {
    let mut ordered: Vec<&WorkerShard> = shards.iter().collect();
    ordered.sort_by(|a, b| a.worker_id.cmp(&b.worker_id).then(a.ts_ms.cmp(&b.ts_ms)));
    let mut fleet = FleetMetrics::default();
    for shard in ordered {
        fleet.workers.push(WorkerMeta {
            worker_id: shard.worker_id.clone(),
            pid: shard.pid,
            git_sha: shard.git_sha.clone(),
            ts_ms: shard.ts_ms,
            exited: shard.exited,
            last_task: shard.last_task.clone(),
        });
        merge_metrics(&mut fleet.merged, &shard.metrics);
    }
    fleet
}

/// Snapshots of the merged span histograms, keyed by span path.
pub fn span_snapshots(merged: &MetricsExport) -> BTreeMap<String, HistogramSnapshot> {
    merged
        .spans
        .iter()
        .map(|(path, export)| (path.clone(), LogLinearHistogram::from_export(export).snapshot()))
        .collect()
}

/// Folds the merged span table into one fleet-wide call-tree
/// [`Profile`] (inclusive/exclusive time, hotspot table).
pub fn merged_profile(merged: &MetricsExport) -> Profile {
    Profile::from_spans(&span_snapshots(merged))
}

/// One worker's raw Chrome-trace events plus the clock anchor needed to
/// place them on the fleet-wide time axis.
#[derive(Debug, Clone)]
pub struct WorkerTrace {
    /// Worker id (becomes the process lane name).
    pub worker_id: String,
    /// The worker's real OS pid (shown in the lane name).
    pub pid: u32,
    /// Unix milliseconds of the worker's monotonic zero.
    pub clock_anchor_unix_ms: u64,
    /// The worker's trace events as written by its `TraceSink`.
    pub events: Vec<Value>,
}

/// Stitches per-worker traces into one Chrome/Perfetto event array.
///
/// Each worker becomes its own process lane: lane `pid` is the worker's
/// 1-based index in worker-id order (stable across runs, unlike OS pids,
/// which can collide across hosts), named `worker <id> (pid <os pid>)`
/// via a `process_name` metadata event. Timestamps are shifted by each
/// worker's clock anchor relative to the earliest anchor, so lanes share
/// one time axis. Every `ph:"X"` span is tagged with a unique
/// `args.span_id` of the form `<lane>-<seq>`.
pub fn stitch_traces(traces: &[WorkerTrace]) -> Vec<Value> {
    let mut ordered: Vec<&WorkerTrace> = traces.iter().collect();
    ordered.sort_by(|a, b| a.worker_id.cmp(&b.worker_id));
    let min_anchor = ordered
        .iter()
        .map(|t| t.clock_anchor_unix_ms)
        .min()
        .unwrap_or(0);

    let mut stitched = Vec::new();
    for (idx, trace) in ordered.iter().enumerate() {
        let lane = (idx + 1) as u64;
        let offset_us = (trace.clock_anchor_unix_ms - min_anchor) * 1000;
        stitched.push(json!({
            "ph": "M",
            "name": "process_name",
            "pid": lane,
            "tid": 0,
            "ts": 0,
            "args": {"name": format!("worker {} (pid {})", trace.worker_id, trace.pid)},
        }));
        // Metadata first, then events by shifted timestamp: per-lane
        // timestamps come out monotonic for any input order.
        let mut lane_events: Vec<Value> = trace.events.clone();
        lane_events.sort_by_key(|e| e.get("ts").and_then(Value::as_u64).unwrap_or(0));
        let mut seq = 0u64;
        for mut event in lane_events {
            if let Some(obj) = event.as_object_mut() {
                if let Some(ts) = obj.get("ts").and_then(Value::as_u64) {
                    obj.insert("ts".to_string(), json!(ts + offset_us));
                }
                obj.insert("pid".to_string(), json!(lane));
                if obj.get("ph").and_then(Value::as_str) == Some("X") {
                    seq += 1;
                    let args = obj
                        .entry("args".to_string())
                        .or_insert_with(|| json!({}));
                    if let Some(args) = args.as_object_mut() {
                        args.insert("span_id".to_string(), json!(format!("{lane}-{seq}")));
                    }
                }
            }
            stitched.push(event);
        }
    }
    stitched
}

/// A robust outlier threshold: `median(values) * factor`, floored at
/// `floor`. With no values the floor alone decides. Used by the
/// straggler detector: a worker whose heartbeat age (or per-task time)
/// exceeds the threshold computed over the whole fleet is flagged.
pub fn robust_threshold(values: &[f64], factor: f64, floor: f64) -> f64 {
    if values.is_empty() {
        return floor;
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return floor;
    }
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    let median = if sorted.len() % 2 == 0 {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    };
    (median * factor).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(worker_id: &str, ts_ms: u64, metrics: MetricsExport) -> WorkerShard {
        WorkerShard {
            worker_id: worker_id.to_string(),
            pid: 100,
            git_sha: "test".to_string(),
            ts_ms,
            uptime_ms: 50,
            clock_anchor_unix_ms: ts_ms - 50,
            exited: false,
            last_task: None,
            metrics,
        }
    }

    #[test]
    fn counters_sum_across_shards() {
        let mut a = MetricsExport::default();
        a.counters.insert("dag.executed".to_string(), 3);
        a.counters.insert("only.a".to_string(), 1);
        let mut b = MetricsExport::default();
        b.counters.insert("dag.executed".to_string(), 4);
        let fleet = merge_shards(&[shard("w1", 10, a), shard("w0", 20, b)]);
        assert_eq!(fleet.merged.counters["dag.executed"], 7);
        assert_eq!(fleet.merged.counters["only.a"], 1);
        // Workers come out sorted by id regardless of input order.
        let ids: Vec<&str> = fleet.workers.iter().map(|w| w.worker_id.as_str()).collect();
        assert_eq!(ids, ["w0", "w1"]);
    }

    #[test]
    fn gauges_take_latest_by_timestamp() {
        let mut a = MetricsExport::default();
        a.gauges.insert(
            "queue.depth".to_string(),
            GaugeSample { value: 5.0, ts_ms: 100 },
        );
        let mut b = MetricsExport::default();
        b.gauges.insert(
            "queue.depth".to_string(),
            GaugeSample { value: 2.0, ts_ms: 200 },
        );
        // Input order must not matter: the later timestamp wins both ways.
        for shards in [
            [shard("w0", 1, a.clone()), shard("w1", 2, b.clone())],
            [shard("w0", 1, b.clone()), shard("w1", 2, a.clone())],
        ] {
            let fleet = merge_shards(&shards);
            assert_eq!(fleet.merged.gauges["queue.depth"].value, 2.0);
            assert_eq!(fleet.merged.gauges["queue.depth"].ts_ms, 200);
        }
    }

    #[test]
    fn gauge_timestamp_ties_are_deterministic() {
        let mut a = MetricsExport::default();
        a.gauges
            .insert("g".to_string(), GaugeSample { value: 1.0, ts_ms: 100 });
        let mut b = MetricsExport::default();
        b.gauges
            .insert("g".to_string(), GaugeSample { value: 9.0, ts_ms: 100 });
        // Shards merge in worker-id order, and on a timestamp tie the
        // earlier-merged (smaller worker id) sample is kept.
        let fleet = merge_shards(&[shard("w1", 1, b), shard("w0", 1, a)]);
        assert_eq!(fleet.merged.gauges["g"].value, 1.0);
    }

    #[test]
    fn histograms_merge_exactly() {
        let mut h1 = LogLinearHistogram::new();
        let mut h2 = LogLinearHistogram::new();
        let mut all = LogLinearHistogram::new();
        for v in [1.0, 2.0, 3.0] {
            h1.record(v);
            all.record(v);
        }
        for v in [4.0, 5.0] {
            h2.record(v);
            all.record(v);
        }
        let mut a = MetricsExport::default();
        a.spans.insert("dag.task".to_string(), h1.export());
        let mut b = MetricsExport::default();
        b.spans.insert("dag.task".to_string(), h2.export());
        let fleet = merge_shards(&[shard("w0", 1, a), shard("w1", 2, b)]);
        assert_eq!(fleet.merged.spans["dag.task"], all.export());
        let snaps = span_snapshots(&fleet.merged);
        assert_eq!(snaps["dag.task"], all.snapshot());
        assert!(merged_profile(&fleet.merged).hotspot_table(4).contains("dag.task"));
    }

    #[test]
    fn stitch_assigns_one_lane_per_worker_and_aligns_clocks() {
        let w0 = WorkerTrace {
            worker_id: "w0".to_string(),
            pid: 111,
            clock_anchor_unix_ms: 1000,
            events: vec![
                json!({"ph": "X", "name": "b", "pid": 111, "tid": 1, "ts": 500, "dur": 10}),
                json!({"ph": "X", "name": "a", "pid": 111, "tid": 1, "ts": 100, "dur": 10}),
            ],
        };
        let w1 = WorkerTrace {
            worker_id: "w1".to_string(),
            pid: 222,
            // Started 2ms after w0: its ts values shift by 2000us.
            clock_anchor_unix_ms: 1002,
            events: vec![json!({"ph": "X", "name": "c", "pid": 222, "tid": 1, "ts": 100, "dur": 5})],
        };
        let stitched = stitch_traces(&[w1, w0]);

        let lanes: Vec<(u64, String)> = stitched
            .iter()
            .filter(|e| e["ph"] == "M" && e["name"] == "process_name")
            .map(|e| {
                (
                    e["pid"].as_u64().unwrap(),
                    e["args"]["name"].as_str().unwrap().to_string(),
                )
            })
            .collect();
        assert_eq!(lanes.len(), 2);
        assert_eq!(lanes[0], (1, "worker w0 (pid 111)".to_string()));
        assert_eq!(lanes[1], (2, "worker w1 (pid 222)".to_string()));

        let spans: Vec<&Value> = stitched.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(spans.len(), 3);
        // w0's events are sorted into monotonic order and keep their ts
        // (earliest anchor); w1's event is shifted by 2000us.
        assert_eq!(spans[0]["name"], "a");
        assert_eq!(spans[0]["ts"], 100);
        assert_eq!(spans[1]["ts"], 500);
        assert_eq!(spans[2]["name"], "c");
        assert_eq!(spans[2]["ts"], 2100);
        // Lane pids were rewritten and span ids are unique.
        assert_eq!(spans[0]["pid"], 1);
        assert_eq!(spans[2]["pid"], 2);
        let mut ids: Vec<&str> = spans
            .iter()
            .map(|s| s["args"]["span_id"].as_str().unwrap())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn robust_threshold_flags_only_outliers() {
        let values = [1.0, 1.1, 0.9, 1.0, 20.0];
        let t = robust_threshold(&values, 4.0, 0.5);
        assert!((t - 4.0).abs() < 1e-9, "threshold = {t}");
        assert!(values.iter().filter(|&&v| v > t).count() == 1);
        // Empty and non-finite inputs fall back to the floor.
        assert_eq!(robust_threshold(&[], 4.0, 2.5), 2.5);
        assert_eq!(robust_threshold(&[f64::NAN], 4.0, 2.5), 2.5);
        // The floor dominates tiny medians.
        assert_eq!(robust_threshold(&[0.001], 4.0, 2.5), 2.5);
    }

    #[test]
    fn shard_serde_round_trips() {
        let mut metrics = MetricsExport::default();
        metrics.counters.insert("dag.executed".to_string(), 2);
        metrics
            .gauges
            .insert("g".to_string(), GaugeSample { value: 1.5, ts_ms: 7 });
        let mut h = LogLinearHistogram::new();
        h.record(0.25);
        metrics.spans.insert("dag.task".to_string(), h.export());
        let s = WorkerShard {
            worker_id: "w0".to_string(),
            pid: 42,
            git_sha: "abc1234".to_string(),
            ts_ms: 1000,
            uptime_ms: 100,
            clock_anchor_unix_ms: 900,
            exited: true,
            last_task: Some("synth".to_string()),
            metrics,
        };
        let json = serde_json::to_string(&s).expect("serialize");
        let back: WorkerShard = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, s);
    }
}
