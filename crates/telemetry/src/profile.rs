//! In-process span-profile aggregation: folds the registry's flat
//! `path -> histogram` span table into a merged call tree with inclusive /
//! exclusive wall time, call counts, and per-node quantiles.
//!
//! *Inclusive* time is everything recorded under a span path; *exclusive*
//! time subtracts the inclusive time of its direct children — the time the
//! stage spent in its own code, which is what a hotspot hunt wants.
//! Exclusive time is floored at zero: with parallel children the
//! children's summed wall time can legitimately exceed the parent's.
//!
//! Because `mmwave-exec` propagates the submitting thread's span path onto
//! its workers (see `crate::span::enter_context`), the tree *structure* is
//! a pure function of the instrumented code paths — identical at any
//! worker count; only the times vary. `tests/trace_export.rs` in the root
//! crate pins that down.

use crate::histogram::HistogramSnapshot;
use std::collections::BTreeMap;

/// One node of the merged span call tree.
#[derive(Debug, Clone)]
pub struct ProfileNode {
    /// Last path segment (`"range_fft"`).
    pub name: String,
    /// Full `/`-joined path (`"capture/drai/range_fft"`).
    pub path: String,
    /// Times this span closed. Zero for synthetic nodes — path prefixes
    /// whose own span has not closed yet.
    pub calls: u64,
    /// Total wall time recorded under this path, milliseconds.
    pub inclusive_ms: f64,
    /// [`ProfileNode::inclusive_ms`] minus the direct children's inclusive
    /// time, floored at zero.
    pub exclusive_ms: f64,
    /// Median single-call duration, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile single-call duration, milliseconds.
    pub p95_ms: f64,
    /// Direct children, ordered by name (stable across runs and worker
    /// counts).
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "name": self.name,
            "path": self.path,
            "calls": self.calls,
            "inclusive_ms": self.inclusive_ms,
            "exclusive_ms": self.exclusive_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "children": self.children.iter().map(ProfileNode::to_json).collect::<Vec<_>>(),
        })
    }
}

/// The merged call tree over every span path a registry recorded.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Top-level spans, ordered by name.
    pub roots: Vec<ProfileNode>,
}

impl Profile {
    /// Builds the tree from a flat `path -> snapshot` map (the registry's
    /// span table). Intermediate paths that were never recorded themselves
    /// (a parent span still open at snapshot time) appear as synthetic
    /// nodes with zero calls and the sum of their children as inclusive
    /// time.
    pub fn from_spans(spans: &BTreeMap<String, HistogramSnapshot>) -> Profile {
        #[derive(Default)]
        struct Builder {
            snapshot: Option<HistogramSnapshot>,
            children: BTreeMap<String, Builder>,
        }
        let mut root = Builder::default();
        for (path, snap) in spans {
            let mut node = &mut root;
            for segment in path.split('/') {
                node = node.children.entry(segment.to_string()).or_default();
            }
            node.snapshot = Some(*snap);
        }

        fn finish(name: &str, prefix: &str, b: &Builder) -> ProfileNode {
            let path =
                if prefix.is_empty() { name.to_string() } else { format!("{prefix}/{name}") };
            let children: Vec<ProfileNode> =
                b.children.iter().map(|(n, c)| finish(n, &path, c)).collect();
            let child_inclusive: f64 = children.iter().map(|c| c.inclusive_ms).sum();
            let (calls, inclusive_ms, p50_ms, p95_ms) = match &b.snapshot {
                Some(s) => (s.count, 1e3 * s.sum, 1e3 * s.p50, 1e3 * s.p95),
                None => (0, child_inclusive, 0.0, 0.0),
            };
            ProfileNode {
                name: name.to_string(),
                path,
                calls,
                inclusive_ms,
                exclusive_ms: (inclusive_ms - child_inclusive).max(0.0),
                p50_ms,
                p95_ms,
                children,
            }
        }
        Profile {
            roots: root.children.iter().map(|(n, c)| finish(n, "", c)).collect(),
        }
    }

    /// Total wall time across the tree: the sum of the roots' inclusive
    /// time — also the sum of every node's exclusive time when no child
    /// overlaps its parent in wall-clock (the serial case); with parallel
    /// children the exclusive percentages simply sum to less than 100 %.
    pub fn total_ms(&self) -> f64 {
        self.roots.iter().map(|r| r.inclusive_ms).sum()
    }

    /// Depth-first flattened view of every node.
    pub fn flatten(&self) -> Vec<&ProfileNode> {
        fn walk<'a>(node: &'a ProfileNode, out: &mut Vec<&'a ProfileNode>) {
            out.push(node);
            for child in &node.children {
                walk(child, out);
            }
        }
        let mut out = Vec::new();
        for root in &self.roots {
            walk(root, &mut out);
        }
        out
    }

    /// Flat `path -> (calls, inclusive_ms, exclusive_ms)` view — the shape
    /// the bench baselines persist.
    pub fn stage_table(&self) -> BTreeMap<String, (u64, f64, f64)> {
        self.flatten()
            .into_iter()
            .map(|n| (n.path.clone(), (n.calls, n.inclusive_ms, n.exclusive_ms)))
            .collect()
    }

    /// Renders the top-`n` hotspot table: nodes sorted by exclusive time,
    /// with the share of total exclusive time per row. The shares are
    /// computed against the whole tree, so any top-N listing sums to
    /// ≤ 100 %.
    pub fn hotspot_table(&self, n: usize) -> String {
        use std::fmt::Write as _;
        let mut nodes = self.flatten();
        nodes.sort_by(|a, b| {
            b.exclusive_ms
                .total_cmp(&a.exclusive_ms)
                .then_with(|| a.path.cmp(&b.path))
        });
        let total_exclusive: f64 = nodes.iter().map(|x| x.exclusive_ms).sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>10} {:>10} {:>9} {:>6}",
            "hotspot (exclusive time)", "calls", "excl(ms)", "incl(ms)", "p95(ms)", "excl%"
        );
        if nodes.is_empty() {
            let _ = writeln!(out, "(no spans recorded)");
            return out;
        }
        for node in nodes.iter().take(n) {
            let share = if total_exclusive > 0.0 {
                100.0 * node.exclusive_ms / total_exclusive
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<44} {:>8} {:>10.1} {:>10.1} {:>9.3} {:>5.1}%",
                node.path, node.calls, node.exclusive_ms, node.inclusive_ms, node.p95_ms, share
            );
        }
        out
    }

    /// The tree as JSON (the `profile` section of the registry snapshot).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Array(self.roots.iter().map(ProfileNode::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::LogLinearHistogram;

    fn snap(samples: &[f64]) -> HistogramSnapshot {
        let mut h = LogLinearHistogram::new();
        for &s in samples {
            h.record(s);
        }
        h.snapshot()
    }

    fn sample_profile() -> Profile {
        let mut spans = BTreeMap::new();
        spans.insert("capture".to_string(), snap(&[1.0])); // 1000 ms inclusive
        spans.insert("capture/synthesis".to_string(), snap(&[0.2, 0.2])); // 400 ms
        spans.insert("capture/drai".to_string(), snap(&[0.3])); // 300 ms
        spans.insert("capture/drai/range_fft".to_string(), snap(&[0.1])); // 100 ms
        spans.insert("train_fit".to_string(), snap(&[0.5])); // 500 ms
        Profile::from_spans(&spans)
    }

    #[test]
    fn tree_structure_and_exclusive_times() {
        let p = sample_profile();
        assert_eq!(p.roots.len(), 2);
        let capture = &p.roots[0];
        assert_eq!(capture.path, "capture");
        assert_eq!(capture.children.len(), 2);
        // Children are name-ordered: drai before synthesis.
        assert_eq!(capture.children[0].name, "drai");
        assert_eq!(capture.children[1].name, "synthesis");
        // capture exclusive = 1000 - (300 + 400) = ~300 (histogram error ~1.6%).
        assert!((capture.exclusive_ms - 300.0).abs() < 40.0, "{}", capture.exclusive_ms);
        let drai = &capture.children[0];
        assert!((drai.exclusive_ms - 200.0).abs() < 25.0, "{}", drai.exclusive_ms);
        let leaf = &drai.children[0];
        assert_eq!(leaf.path, "capture/drai/range_fft");
        assert!((leaf.exclusive_ms - leaf.inclusive_ms).abs() < 1e-9);
        assert_eq!(p.roots[1].path, "train_fit");
    }

    #[test]
    fn synthetic_parent_for_orphan_child() {
        let mut spans = BTreeMap::new();
        spans.insert("a/b".to_string(), snap(&[0.25]));
        let p = Profile::from_spans(&spans);
        assert_eq!(p.roots.len(), 1);
        let a = &p.roots[0];
        assert_eq!(a.calls, 0, "synthetic node: span `a` never closed");
        assert!((a.inclusive_ms - a.children[0].inclusive_ms).abs() < 1e-9);
        assert_eq!(a.exclusive_ms, 0.0);
    }

    #[test]
    fn hotspot_shares_sum_to_at_most_100_percent() {
        let p = sample_profile();
        let table = p.hotspot_table(3);
        let mut total = 0.0;
        for line in table.lines().skip(1) {
            let pct: f64 = line
                .rsplit_once(' ')
                .map(|(_, last)| last.trim_end_matches('%').trim().parse().unwrap_or(0.0))
                .unwrap_or(0.0);
            total += pct;
        }
        assert!(total <= 100.0 + 1e-6, "shares summed to {total}");
        assert!(table.contains("excl%"));
        // Top-1 must be the largest exclusive-time node.
        let first_row = table.lines().nth(1).unwrap();
        assert!(first_row.starts_with("train_fit"), "{first_row}");
    }

    #[test]
    fn empty_profile_renders_placeholder() {
        let p = Profile::from_spans(&BTreeMap::new());
        assert_eq!(p.total_ms(), 0.0);
        assert!(p.hotspot_table(5).contains("(no spans recorded)"));
    }

    #[test]
    fn json_shape_is_nested() {
        let p = sample_profile();
        let json = p.to_json();
        assert_eq!(json[0]["path"], "capture");
        assert_eq!(json[0]["children"][0]["name"], "drai");
        assert_eq!(json[0]["children"][0]["children"][0]["path"], "capture/drai/range_fft");
    }
}
