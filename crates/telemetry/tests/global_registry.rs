//! Integration tests exercising the process-wide registry: nested-span
//! parent attribution and concurrent recording from multiple threads.
//!
//! These tests share one global registry with each other (the test harness
//! runs them on parallel threads in a single process), so every test uses
//! names unique to itself and only asserts on those.

use mmwave_telemetry::{global, span, span_at, Level};

#[test]
fn nested_spans_record_under_parent_path() {
    {
        let outer = span_at("it_capture", Level::Debug);
        assert_eq!(outer.path(), Some("it_capture"));
        {
            let mid = span("it_drai");
            assert_eq!(mid.path(), Some("it_capture/it_drai"));
            let inner = span("it_range_fft");
            assert_eq!(inner.path(), Some("it_capture/it_drai/it_range_fft"));
        }
        // Sibling after the nested block attributes to the outer span only.
        let sibling = span("it_cfar");
        assert_eq!(sibling.path(), Some("it_capture/it_cfar"));
    }
    let r = global();
    assert_eq!(r.span_snapshot("it_capture").unwrap().count, 1);
    assert_eq!(r.span_snapshot("it_capture/it_drai").unwrap().count, 1);
    assert_eq!(r.span_snapshot("it_capture/it_drai/it_range_fft").unwrap().count, 1);
    assert_eq!(r.span_snapshot("it_capture/it_cfar").unwrap().count, 1);
    assert!(
        r.span_snapshot("it_drai").is_none(),
        "nested span must not also record under its bare name"
    );
    let parent = r.span_snapshot("it_capture").unwrap();
    let child = r.span_snapshot("it_capture/it_drai").unwrap();
    assert!(
        parent.sum >= child.sum,
        "parent wall time ({}) must cover its child's ({})",
        parent.sum,
        child.sum
    );
}

#[test]
fn span_stack_is_per_thread() {
    let _outer = span_at("it_main_thread", Level::Debug);
    let handle = std::thread::spawn(|| {
        let worker = span("it_worker");
        // A fresh thread has an empty stack: no parent prefix leaks across.
        assert_eq!(worker.path(), Some("it_worker"));
    });
    handle.join().unwrap();
    drop(_outer);
    assert_eq!(global().span_snapshot("it_worker").unwrap().count, 1);
}

#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 500;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    mmwave_telemetry::counter("it_conc.frames", 1);
                    mmwave_telemetry::observe("it_conc.latency", (t as f64 + 1.0) * 1e-3);
                    let _s = span("it_conc_span");
                    drop(_s);
                    mmwave_telemetry::gauge("it_conc.last", i as f64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let r = global();
    let expected = (THREADS as u64) * PER_THREAD;
    assert_eq!(r.counter_value("it_conc.frames"), expected);
    assert_eq!(r.histogram_snapshot("it_conc.latency").unwrap().count, expected);
    assert_eq!(r.span_snapshot("it_conc_span").unwrap().count, expected);
    assert!(r.gauge_value("it_conc.last").is_some());
    let snap = mmwave_telemetry::snapshot();
    assert_eq!(snap["counters"]["it_conc.frames"], expected);
}
