//! Heatmap types: range-Doppler images (RDI), dynamic range-angle images
//! (DRAI), and the 32-frame sequences that represent activities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What a heatmap's axes mean. Purely informational — the numeric layout is
/// identical — but carrying it prevents accidentally feeding an RDI to a
/// model trained on DRAIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeatmapKind {
    /// Rows are range bins, columns are Doppler bins.
    RangeDoppler,
    /// Rows are range bins, columns are angle bins (the paper's DRAI).
    RangeAngle,
}

/// A dense `rows x cols` heatmap of non-negative intensities.
///
/// # Examples
///
/// ```
/// use mmwave_dsp::heatmap::{Heatmap, HeatmapKind};
/// let mut h = Heatmap::zeros(4, 4, HeatmapKind::RangeAngle);
/// *h.get_mut(1, 2) = 3.0;
/// assert_eq!(h.get(1, 2), 3.0);
/// assert_eq!(h.peak(), Some((1, 2, 3.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    rows: usize,
    cols: usize,
    kind: HeatmapKind,
    data: Vec<f32>,
}

impl Heatmap {
    /// Creates an all-zero heatmap.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize, kind: HeatmapKind) -> Self {
        assert!(rows > 0 && cols > 0, "heatmap dimensions must be nonzero");
        Heatmap { rows, cols, kind, data: vec![0.0; rows * cols] }
    }

    /// Creates a heatmap from existing row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_data(rows: usize, cols: usize, kind: HeatmapKind, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "heatmap data length mismatch");
        Heatmap { rows, cols, kind, data }
    }

    /// Number of rows (range bins).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (Doppler or angle bins).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Axis semantics.
    pub fn kind(&self) -> HeatmapKind {
        self.kind
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "heatmap index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Mutable value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut f32 {
        assert!(row < self.rows && col < self.cols, "heatmap index out of bounds");
        &mut self.data[row * self.cols + col]
    }

    /// Row-major raw data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major raw data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Largest value with its position, or `None` for all-NaN data.
    pub fn peak(&self) -> Option<(usize, usize, f32)> {
        self.data
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_nan())
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &v)| (i / self.cols, i % self.cols, v))
    }

    /// Sum of all intensities.
    pub fn total(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean (L2) distance to another heatmap — the
    /// `|| h(R_e(y')) - h(R_e(y)) ||_2` term of the paper's Eq. (2).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn l2_distance(&self, other: &Heatmap) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "heatmap shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
    }

    /// Applies `log(1 + x)` dynamic-range compression in place.
    pub fn log_compress(&mut self) {
        for v in &mut self.data {
            *v = v.max(0.0).ln_1p();
        }
    }

    /// Scales the heatmap by `1 / denom` in place (no-op if `denom <= 0`).
    pub fn normalize_by(&mut self, denom: f32) {
        if denom > 0.0 {
            for v in &mut self.data {
                *v /= denom;
            }
        }
    }

    /// Renders a coarse ASCII view (rows top-to-bottom), used by the Fig. 5
    /// stealthiness bench to show heatmaps with and without a trigger.
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let max = self.peak().map(|p| p.2).unwrap_or(0.0).max(1e-12);
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for r in (0..self.rows).rev() {
            for c in 0..self.cols {
                let t = (self.get(r, c) / max).clamp(0.0, 1.0);
                let i = ((t * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[i] as char);
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Heatmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} heatmap {}x{}", self.kind, self.rows, self.cols)
    }
}

/// A time-ordered sequence of heatmaps representing one activity sample
/// (32 frames in the prototype).
///
/// This is the tensor the CNN-LSTM consumes and the unit the attacker
/// poisons: poisoning replaces the top-k most important frames with
/// triggered versions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeatmapSeq {
    frames: Vec<Heatmap>,
}

impl HeatmapSeq {
    /// Creates a sequence from frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or shapes/kinds are inconsistent.
    pub fn new(frames: Vec<Heatmap>) -> Self {
        assert!(!frames.is_empty(), "heatmap sequence cannot be empty");
        let (r, c, k) = (frames[0].rows(), frames[0].cols(), frames[0].kind());
        for f in &frames {
            assert_eq!(
                (f.rows(), f.cols(), f.kind()),
                (r, c, k),
                "inconsistent frame shape in sequence"
            );
        }
        HeatmapSeq { frames }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frame accessor.
    pub fn frame(&self, i: usize) -> &Heatmap {
        &self.frames[i]
    }

    /// Mutable frame accessor.
    pub fn frame_mut(&mut self, i: usize) -> &mut Heatmap {
        &mut self.frames[i]
    }

    /// All frames.
    pub fn frames(&self) -> &[Heatmap] {
        &self.frames
    }

    /// Replaces frame `i` (the poisoning primitive).
    ///
    /// # Panics
    ///
    /// Panics if the replacement shape differs or `i` is out of bounds.
    pub fn replace_frame(&mut self, i: usize, frame: Heatmap) {
        assert_eq!(
            (frame.rows(), frame.cols()),
            (self.frames[i].rows(), self.frames[i].cols()),
            "replacement frame shape mismatch"
        );
        self.frames[i] = frame;
    }

    /// Normalizes the whole sequence by its global maximum so values land in
    /// `[0, 1]` while *relative* frame intensities are preserved (a trigger's
    /// extra energy must stay visible relative to other frames).
    pub fn normalize_global(&mut self) {
        let max = self
            .frames
            .iter()
            .filter_map(|f| f.peak().map(|p| p.2))
            .fold(0.0f32, f32::max);
        if max > 0.0 {
            for f in &mut self.frames {
                f.normalize_by(max);
            }
        }
    }

    /// Mean L2 distance per frame to another sequence of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn mean_l2_distance(&self, other: &HeatmapSeq) -> f32 {
        assert_eq!(self.len(), other.len(), "sequence length mismatch");
        let total: f32 = self
            .frames
            .iter()
            .zip(&other.frames)
            .map(|(a, b)| a.l2_distance(b))
            .sum();
        total / self.len() as f32
    }
}

/// Repairs dropped frames in a heatmap series under construction: each
/// dropped frame is replaced by the elementwise linear interpolation of its
/// nearest valid neighbors, or a copy of the single nearest valid frame at
/// the sequence edges. When *every* frame is dropped the frames are left
/// untouched (all zeros from the capture path), so the caller still ends up
/// with a valid — if uninformative — sequence.
///
/// This is the DSP half of the sensor fault model: frame dropout upstream
/// (bus congestion, scheduler hiccups) must degrade the pipeline
/// gracefully rather than poison it.
///
/// # Panics
///
/// Panics if `frames` and `dropped` have different lengths or the frames
/// have inconsistent shapes.
pub fn repair_dropped_frames(frames: &mut [Heatmap], dropped: &[bool]) {
    assert_eq!(frames.len(), dropped.len(), "dropped-flag length mismatch");
    let valid: Vec<usize> = (0..frames.len()).filter(|&i| !dropped[i]).collect();
    if valid.is_empty() {
        return;
    }
    for i in 0..frames.len() {
        if !dropped[i] {
            continue;
        }
        let prev = valid.iter().rev().find(|&&v| v < i).copied();
        let next = valid.iter().find(|&&v| v > i).copied();
        let repaired = match (prev, next) {
            (Some(p), Some(n)) => {
                let t = (i - p) as f32 / (n - p) as f32;
                let a = &frames[p];
                let b = &frames[n];
                let data: Vec<f32> = a
                    .as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .map(|(&x, &y)| x * (1.0 - t) + y * t)
                    .collect();
                Heatmap::from_data(a.rows(), a.cols(), a.kind(), data)
            }
            (Some(p), None) => frames[p].clone(),
            (None, Some(n)) => frames[n].clone(),
            (None, None) => unreachable!("valid is nonempty"),
        };
        frames[i] = repaired;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hm(values: &[f32], cols: usize) -> Heatmap {
        Heatmap::from_data(values.len() / cols, cols, HeatmapKind::RangeAngle, values.to_vec())
    }

    #[test]
    fn indexing_roundtrip() {
        let mut h = Heatmap::zeros(3, 5, HeatmapKind::RangeDoppler);
        *h.get_mut(2, 4) = 7.5;
        assert_eq!(h.get(2, 4), 7.5);
        assert_eq!(h.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        Heatmap::zeros(2, 2, HeatmapKind::RangeAngle).get(2, 0);
    }

    #[test]
    fn peak_and_total() {
        let h = hm(&[1.0, 5.0, 2.0, 0.5], 2);
        assert_eq!(h.peak(), Some((0, 1, 5.0)));
        assert!((h.total() - 8.5).abs() < 1e-6);
    }

    #[test]
    fn l2_distance_is_a_metric_spot_check() {
        let a = hm(&[1.0, 0.0, 0.0, 0.0], 2);
        let b = hm(&[0.0, 0.0, 0.0, 1.0], 2);
        assert_eq!(a.l2_distance(&a), 0.0);
        assert!((a.l2_distance(&b) - 2f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.l2_distance(&b), b.l2_distance(&a));
    }

    #[test]
    fn log_compress_is_monotone() {
        let mut h = hm(&[0.0, 1.0, 10.0, 100.0], 2);
        h.log_compress();
        let d = h.as_slice();
        assert!(d[0] < d[1] && d[1] < d[2] && d[2] < d[3]);
        assert_eq!(d[0], 0.0);
    }

    #[test]
    fn sequence_global_normalization_preserves_ratios() {
        let f1 = hm(&[2.0, 0.0, 0.0, 0.0], 2);
        let f2 = hm(&[8.0, 0.0, 0.0, 0.0], 2);
        let mut seq = HeatmapSeq::new(vec![f1, f2]);
        seq.normalize_global();
        assert!((seq.frame(0).get(0, 0) - 0.25).abs() < 1e-6);
        assert!((seq.frame(1).get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn replace_frame_swaps_contents() {
        let mut seq = HeatmapSeq::new(vec![hm(&[0.0; 4], 2); 3]);
        seq.replace_frame(1, hm(&[1.0, 2.0, 3.0, 4.0], 2));
        assert_eq!(seq.frame(1).get(1, 1), 4.0);
        assert_eq!(seq.frame(0).get(1, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "inconsistent frame shape")]
    fn mixed_shape_sequence_panics() {
        HeatmapSeq::new(vec![
            Heatmap::zeros(2, 2, HeatmapKind::RangeAngle),
            Heatmap::zeros(3, 2, HeatmapKind::RangeAngle),
        ]);
    }

    #[test]
    fn ascii_render_shape() {
        let h = hm(&[0.0, 1.0, 0.5, 0.25], 2);
        let s = h.to_ascii();
        assert_eq!(s.lines().count(), 2);
        assert!(s.lines().all(|l| l.len() == 2));
        assert!(s.contains('@'));
    }

    #[test]
    fn mean_l2_over_sequences() {
        let a = HeatmapSeq::new(vec![hm(&[1.0, 0.0, 0.0, 0.0], 2); 4]);
        let b = HeatmapSeq::new(vec![hm(&[0.0, 0.0, 0.0, 0.0], 2); 4]);
        assert!((a.mean_l2_distance(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn repair_interpolates_interior_drop() {
        let mut frames = vec![
            hm(&[0.0, 0.0, 0.0, 0.0], 2),
            hm(&[99.0; 4], 2), // dropped; content should be replaced
            hm(&[4.0, 4.0, 4.0, 4.0], 2),
        ];
        repair_dropped_frames(&mut frames, &[false, true, false]);
        for &v in frames[1].as_slice() {
            assert!((v - 2.0).abs() < 1e-6, "midpoint interpolation expected, got {v}");
        }
    }

    #[test]
    fn repair_copies_nearest_at_edges() {
        let mut frames = vec![
            hm(&[0.0; 4], 2), // dropped leading frame
            hm(&[3.0, 1.0, 2.0, 0.5], 2),
            hm(&[0.0; 4], 2), // dropped trailing frame
        ];
        repair_dropped_frames(&mut frames, &[true, false, true]);
        assert_eq!(frames[0], frames[1]);
        assert_eq!(frames[2], frames[1]);
    }

    #[test]
    fn repair_weights_by_distance() {
        let mut frames = vec![
            hm(&[0.0; 4], 2),
            hm(&[0.0; 4], 2), // dropped, 1/3 of the way
            hm(&[0.0; 4], 2), // dropped, 2/3 of the way
            hm(&[3.0; 4], 2),
        ];
        repair_dropped_frames(&mut frames, &[false, true, true, false]);
        assert!((frames[1].get(0, 0) - 1.0).abs() < 1e-6);
        assert!((frames[2].get(0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn repair_leaves_all_dropped_sequence_alone() {
        let mut frames = vec![hm(&[0.0; 4], 2); 3];
        repair_dropped_frames(&mut frames, &[true, true, true]);
        assert!(frames.iter().all(|f| f.as_slice().iter().all(|&v| v == 0.0)));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn repair_length_mismatch_panics() {
        let mut frames = vec![hm(&[0.0; 4], 2); 2];
        repair_dropped_frames(&mut frames, &[true]);
    }

    #[test]
    fn repair_of_leading_and_trailing_runs_copies_the_nearest_valid_frame() {
        // A *run* of drops at each edge, not just one frame: every dropped
        // frame has a valid neighbor on only one side, so all of them must
        // become copies of the single surviving frame.
        let survivor = hm(&[3.0, 1.0, 2.0, 0.5], 2);
        let mut frames = vec![
            hm(&[99.0; 4], 2),
            hm(&[99.0; 4], 2),
            survivor.clone(),
            hm(&[99.0; 4], 2),
            hm(&[99.0; 4], 2),
        ];
        repair_dropped_frames(&mut frames, &[true, true, false, true, true]);
        for f in &frames {
            assert_eq!(*f, survivor);
        }
    }

    #[test]
    fn repair_output_is_finite_for_adjacent_drops_between_extreme_frames() {
        // Two adjacent interior drops between frames at the extremes of the
        // representable range: interpolation must stay finite (no overflow
        // to inf, no 0/0 NaN from the weight arithmetic).
        let mut frames = vec![
            hm(&[f32::MAX / 4.0; 4], 2),
            hm(&[0.0; 4], 2),
            hm(&[0.0; 4], 2),
            hm(&[-f32::MAX / 4.0; 4], 2),
        ];
        repair_dropped_frames(&mut frames, &[false, true, true, false]);
        for f in &frames {
            assert!(f.as_slice().iter().all(|v| v.is_finite()), "non-finite repair output");
        }
        // And the interpolation is ordered: frame 1 sits nearer the large
        // endpoint than frame 2.
        assert!(frames[1].get(0, 0) > frames[2].get(0, 0));
    }

    #[test]
    fn repair_of_all_dropped_capture_yields_the_all_zero_sequence() {
        // The capture path hands over zeroed frames for drops; when every
        // frame dropped there is no donor, so the repaired sequence is the
        // valid-but-uninformative all-zero one — finite, not NaN-filled.
        let mut frames = vec![hm(&[0.0; 4], 2); 4];
        repair_dropped_frames(&mut frames, &[true; 4]);
        for f in &frames {
            assert!(f.as_slice().iter().all(|&v| v == 0.0 && v.is_finite()));
        }
    }

    #[test]
    fn repair_of_a_single_all_dropped_frame_is_a_no_op() {
        let mut frames = vec![hm(&[0.0; 4], 2)];
        repair_dropped_frames(&mut frames, &[true]);
        assert!(frames[0].as_slice().iter().all(|&v| v == 0.0));
        // ...and a single *valid* frame needs no repair either.
        let mut frames = vec![hm(&[1.5; 4], 2)];
        repair_dropped_frames(&mut frames, &[false]);
        assert!(frames[0].as_slice().iter().all(|&v| v == 1.5));
    }
}
