//! Micro-Doppler spectrograms (short-time Fourier analysis over slow time).
//!
//! Classic radar HAR work (Doppler-profile methods cited in the paper's
//! related work) classifies gestures from time-velocity maps rather than
//! range-angle maps. This module provides that representation as an
//! analysis tool: concatenate the slow-time signal of the dominant range
//! bin across frames and STFT it.

use crate::fft::{fftshift, Fft};
use crate::heatmap::{Heatmap, HeatmapKind};
use crate::window::WindowKind;
use crate::Complex32;

/// Short-time Fourier transform magnitude over a complex slow-time signal.
///
/// Returns a heatmap with one row per window position (time) and one
/// column per Doppler bin (zero velocity centered).
///
/// # Panics
///
/// Panics if `window_len` is not a power of two, is zero, larger than the
/// signal, or `hop == 0`.
///
/// # Examples
///
/// ```
/// use mmwave_dsp::spectrogram::stft_magnitude;
/// use mmwave_dsp::Complex32;
/// // A constant-frequency tone concentrates in one Doppler column.
/// let signal: Vec<Complex32> = (0..256)
///     .map(|n| Complex32::cis(0.7 * n as f32))
///     .collect();
/// let spec = stft_magnitude(&signal, 32, 16, mmwave_dsp::window::WindowKind::Hann);
/// assert_eq!(spec.cols(), 32);
/// ```
pub fn stft_magnitude(
    signal: &[Complex32],
    window_len: usize,
    hop: usize,
    window: WindowKind,
) -> Heatmap {
    assert!(window_len > 0 && window_len.is_power_of_two(), "window must be a power of two");
    assert!(hop > 0, "hop must be positive");
    assert!(window_len <= signal.len(), "window longer than the signal");
    let plan = Fft::new(window_len);
    let coeffs = window.coefficients(window_len);
    let n_rows = (signal.len() - window_len) / hop + 1;
    let mut data = Vec::with_capacity(n_rows * window_len);
    let mut buf = vec![Complex32::ZERO; window_len];
    for r in 0..n_rows {
        let start = r * hop;
        buf.copy_from_slice(&signal[start..start + window_len]);
        crate::window::apply(&mut buf, &coeffs);
        plan.forward(&mut buf);
        let shifted = fftshift(&buf);
        data.extend(shifted.iter().map(|z| z.abs()));
    }
    Heatmap::from_data(n_rows, window_len, HeatmapKind::RangeDoppler, data)
}

/// Dominant Doppler column (velocity bin) per time row of a spectrogram —
/// the micro-Doppler *signature curve* of a gesture.
pub fn dominant_doppler_track(spectrogram: &Heatmap) -> Vec<usize> {
    (0..spectrogram.rows())
        .map(|r| {
            (0..spectrogram.cols())
                .max_by(|&a, &b| spectrogram.get(r, a).total_cmp(&spectrogram.get(r, b)))
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f32, len: usize) -> Vec<Complex32> {
        (0..len).map(|n| Complex32::cis(freq * n as f32)).collect()
    }

    #[test]
    fn stationary_tone_has_flat_track() {
        let spec = stft_magnitude(&tone(0.9, 512), 64, 32, WindowKind::Hann);
        let track = dominant_doppler_track(&spec);
        assert!(track.windows(2).all(|w| w[0] == w[1]), "track should be constant: {track:?}");
    }

    #[test]
    fn zero_frequency_sits_at_center() {
        let signal = vec![Complex32::ONE; 256];
        let spec = stft_magnitude(&signal, 32, 16, WindowKind::Hann);
        let track = dominant_doppler_track(&spec);
        assert!(track.iter().all(|&c| c == 16), "DC should land center: {track:?}");
    }

    #[test]
    fn chirped_signal_has_moving_track() {
        // Linearly increasing frequency: the track must drift.
        let signal: Vec<Complex32> = (0..1024)
            .map(|n| {
                let t = n as f32;
                Complex32::cis(0.0005 * t * t)
            })
            .collect();
        let spec = stft_magnitude(&signal, 64, 32, WindowKind::Hann);
        let track = dominant_doppler_track(&spec);
        assert_ne!(track.first(), track.last(), "chirp track should move: {track:?}");
    }

    #[test]
    fn row_count_matches_hops() {
        let spec = stft_magnitude(&tone(0.3, 256), 64, 64, WindowKind::Rectangular);
        assert_eq!(spec.rows(), (256 - 64) / 64 + 1);
    }

    #[test]
    #[should_panic(expected = "window longer than the signal")]
    fn oversized_window_panics() {
        stft_magnitude(&tone(0.1, 16), 32, 8, WindowKind::Hann);
    }
}
