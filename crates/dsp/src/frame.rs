//! Raw IF-signal containers.

use crate::Complex32;
use serde::{Deserialize, Serialize};

/// One radar frame of raw intermediate-frequency samples: a dense
/// `virtual-antenna x chirp x ADC-sample` cube.
///
/// Eq. (3) of the paper is a *sum over reflective surfaces*, so IF frames
/// form a vector space: the frame of a scene equals the sum of the frames of
/// its parts. The simulator exploits this heavily — the static environment,
/// the moving body, and the trigger are synthesized separately and
/// superposed with [`IfFrame::add_assign_frame`], which is also how a
/// poisoned sample is derived from a clean one at near-zero cost.
///
/// # Examples
///
/// ```
/// use mmwave_dsp::{Complex32, IfFrame};
/// let mut frame = IfFrame::zeros(2, 4, 8);
/// frame.chirp_mut(0, 1)[3] = Complex32::ONE;
/// assert_eq!(frame.chirp(0, 1)[3], Complex32::ONE);
/// assert_eq!(frame.chirp(1, 1)[3], Complex32::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IfFrame {
    n_vrx: usize,
    n_chirps: usize,
    n_adc: usize,
    data: Vec<Complex32>,
}

impl IfFrame {
    /// Creates an all-zero frame.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(n_vrx: usize, n_chirps: usize, n_adc: usize) -> Self {
        assert!(n_vrx > 0 && n_chirps > 0 && n_adc > 0, "frame dimensions must be nonzero");
        IfFrame {
            n_vrx,
            n_chirps,
            n_adc,
            data: vec![Complex32::ZERO; n_vrx * n_chirps * n_adc],
        }
    }

    /// Number of virtual receive antennas.
    pub fn n_vrx(&self) -> usize {
        self.n_vrx
    }

    /// Number of chirps per frame (slow-time length).
    pub fn n_chirps(&self) -> usize {
        self.n_chirps
    }

    /// Number of ADC samples per chirp (fast-time length).
    pub fn n_adc(&self) -> usize {
        self.n_adc
    }

    #[inline]
    fn offset(&self, vrx: usize, chirp: usize) -> usize {
        debug_assert!(vrx < self.n_vrx && chirp < self.n_chirps);
        (vrx * self.n_chirps + chirp) * self.n_adc
    }

    /// The ADC samples of one chirp on one virtual antenna.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds.
    pub fn chirp(&self, vrx: usize, chirp: usize) -> &[Complex32] {
        let o = self.offset(vrx, chirp);
        &self.data[o..o + self.n_adc]
    }

    /// Mutable access to one chirp's ADC samples.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds.
    pub fn chirp_mut(&mut self, vrx: usize, chirp: usize) -> &mut [Complex32] {
        let o = self.offset(vrx, chirp);
        &mut self.data[o..o + self.n_adc]
    }

    /// Raw flat storage (antenna-major, then chirp, then ADC sample).
    pub fn as_slice(&self) -> &[Complex32] {
        &self.data
    }

    /// Superposes another frame onto this one (`self += other`), the linear
    /// composition at the heart of Eq. (3).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add_assign_frame(&mut self, other: &IfFrame) {
        assert_eq!(
            (self.n_vrx, self.n_chirps, self.n_adc),
            (other.n_vrx, other.n_chirps, other.n_adc),
            "IF frame dimension mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Returns `self + other` without mutating either frame.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn superposed(&self, other: &IfFrame) -> IfFrame {
        let mut out = self.clone();
        out.add_assign_frame(other);
        out
    }

    /// Scales every sample by `s` (used for reflectivity attenuation, e.g.
    /// clothing over a trigger).
    pub fn scale(&mut self, s: f32) {
        for z in &mut self.data {
            *z = z.scale(s);
        }
    }

    /// Total signal energy (sum of squared magnitudes).
    pub fn energy(&self) -> f64 {
        self.data.iter().map(|z| z.abs_sq() as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_energy() {
        let f = IfFrame::zeros(3, 4, 5);
        assert_eq!(f.n_vrx(), 3);
        assert_eq!(f.n_chirps(), 4);
        assert_eq!(f.n_adc(), 5);
        assert_eq!(f.as_slice().len(), 60);
        assert_eq!(f.energy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "frame dimensions must be nonzero")]
    fn zero_dimension_panics() {
        IfFrame::zeros(0, 4, 5);
    }

    #[test]
    fn chirp_indexing_is_disjoint() {
        let mut f = IfFrame::zeros(2, 3, 4);
        for vrx in 0..2 {
            for c in 0..3 {
                f.chirp_mut(vrx, c)[0] = Complex32::new((vrx * 3 + c) as f32, 0.0);
            }
        }
        for vrx in 0..2 {
            for c in 0..3 {
                assert_eq!(f.chirp(vrx, c)[0].re, (vrx * 3 + c) as f32);
            }
        }
    }

    #[test]
    fn superposition_is_linear() {
        let mut a = IfFrame::zeros(1, 2, 2);
        let mut b = IfFrame::zeros(1, 2, 2);
        a.chirp_mut(0, 0)[0] = Complex32::new(1.0, 2.0);
        b.chirp_mut(0, 0)[0] = Complex32::new(3.0, -1.0);
        let c = a.superposed(&b);
        assert_eq!(c.chirp(0, 0)[0], Complex32::new(4.0, 1.0));
        // Original unchanged.
        assert_eq!(a.chirp(0, 0)[0], Complex32::new(1.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_superposition_panics() {
        let mut a = IfFrame::zeros(1, 2, 2);
        let b = IfFrame::zeros(2, 2, 2);
        a.add_assign_frame(&b);
    }

    #[test]
    fn scale_multiplies_energy_quadratically() {
        let mut f = IfFrame::zeros(1, 1, 2);
        f.chirp_mut(0, 0)[0] = Complex32::new(2.0, 0.0);
        let e0 = f.energy();
        f.scale(0.5);
        assert!((f.energy() - e0 * 0.25).abs() < 1e-9);
    }
}
