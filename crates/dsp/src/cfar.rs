//! Cell-averaging CFAR (constant false-alarm rate) detection.
//!
//! CFAR thresholds each heatmap cell against the local noise estimate from
//! a ring of training cells, keeping the false-alarm rate stable across
//! varying clutter. The trigger-detection defense uses it to localize
//! anomalously bright, compact returns — exactly what a metal reflector
//! adds to a DRAI.

use crate::heatmap::Heatmap;
use serde::{Deserialize, Serialize};

/// A CFAR detection: cell position and its strength relative to the local
/// noise floor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Row (range bin).
    pub row: usize,
    /// Column (Doppler or angle bin).
    pub col: usize,
    /// Cell value.
    pub value: f32,
    /// Ratio of the cell value to the local noise estimate.
    pub snr: f32,
}

/// 2D cell-averaging CFAR configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CfarConfig {
    /// Guard cells on each side of the cell under test.
    pub guard: usize,
    /// Training cells beyond the guard band on each side.
    pub train: usize,
    /// Detection threshold as a multiple of the local mean.
    pub threshold: f32,
}

impl Default for CfarConfig {
    fn default() -> Self {
        CfarConfig { guard: 1, train: 2, threshold: 3.0 }
    }
}

/// Runs 2D CA-CFAR over a heatmap and returns detections sorted by
/// descending SNR.
///
/// # Panics
///
/// Panics if `train == 0`.
pub fn ca_cfar(map: &Heatmap, config: &CfarConfig) -> Vec<Detection> {
    assert!(config.train > 0, "need at least one training cell");
    let _span = mmwave_telemetry::span("cfar");
    let (rows, cols) = (map.rows(), map.cols());
    let reach = (config.guard + config.train) as i64;
    let guard = config.guard as i64;
    let mut out = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let mut noise = 0.0f64;
            let mut count = 0usize;
            for dr in -reach..=reach {
                for dc in -reach..=reach {
                    if dr.abs() <= guard && dc.abs() <= guard {
                        continue; // guard band (includes the cell itself)
                    }
                    let rr = r as i64 + dr;
                    let cc = c as i64 + dc;
                    if rr < 0 || cc < 0 || rr >= rows as i64 || cc >= cols as i64 {
                        continue;
                    }
                    noise += map.get(rr as usize, cc as usize) as f64;
                    count += 1;
                }
            }
            if count == 0 {
                continue;
            }
            let mean = (noise / count as f64) as f32;
            let v = map.get(r, c);
            if v > config.threshold * mean.max(1e-12) {
                out.push(Detection { row: r, col: c, value: v, snr: v / mean.max(1e-12) });
            }
        }
    }
    out.sort_by(|a, b| b.snr.total_cmp(&a.snr));
    mmwave_telemetry::counter("dsp.cfar_detections", out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatmap::HeatmapKind;

    fn flat(rows: usize, cols: usize, level: f32) -> Heatmap {
        Heatmap::from_data(rows, cols, HeatmapKind::RangeAngle, vec![level; rows * cols])
    }

    #[test]
    fn uniform_map_has_no_detections() {
        let map = flat(16, 16, 1.0);
        assert!(ca_cfar(&map, &CfarConfig::default()).is_empty());
    }

    #[test]
    fn isolated_peak_is_detected_at_the_right_cell() {
        let mut map = flat(16, 16, 0.1);
        *map.get_mut(5, 9) = 5.0;
        let det = ca_cfar(&map, &CfarConfig::default());
        assert_eq!(det.len(), 1, "{det:?}");
        assert_eq!((det[0].row, det[0].col), (5, 9));
        assert!(det[0].snr > 10.0);
    }

    #[test]
    fn guard_band_protects_extended_targets() {
        // A 2-cell target: with guard 1 both cells are detected because
        // each is excluded from the other's noise estimate.
        let mut map = flat(16, 16, 0.1);
        *map.get_mut(7, 7) = 4.0;
        *map.get_mut(7, 8) = 4.0;
        let det = ca_cfar(&map, &CfarConfig { guard: 1, train: 2, threshold: 3.0 });
        assert_eq!(det.len(), 2, "{det:?}");
    }

    #[test]
    fn threshold_scales_sensitivity() {
        let mut map = flat(16, 16, 1.0);
        *map.get_mut(8, 8) = 2.5;
        let loose = ca_cfar(&map, &CfarConfig { threshold: 2.0, ..CfarConfig::default() });
        let strict = ca_cfar(&map, &CfarConfig { threshold: 3.0, ..CfarConfig::default() });
        assert_eq!(loose.len(), 1);
        assert!(strict.is_empty());
    }

    #[test]
    fn detections_sorted_by_snr() {
        let mut map = flat(24, 24, 0.1);
        *map.get_mut(4, 4) = 2.0;
        *map.get_mut(18, 18) = 6.0;
        let det = ca_cfar(&map, &CfarConfig::default());
        assert!(det.len() >= 2);
        assert!(det[0].snr >= det[1].snr);
        assert_eq!((det[0].row, det[0].col), (18, 18));
    }

    #[test]
    fn edge_cells_use_partial_training_windows() {
        let mut map = flat(8, 8, 0.1);
        *map.get_mut(0, 0) = 5.0; // corner peak
        let det = ca_cfar(&map, &CfarConfig::default());
        assert!(det.iter().any(|d| d.row == 0 && d.col == 0));
    }
}
