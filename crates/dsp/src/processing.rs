//! The FMCW processing chain: Range-FFT, MTI clutter removal, Doppler-FFT
//! (RDI), and Angle-FFT (DRAI).
//!
//! The stages mirror Section II-A of the paper:
//!
//! 1. **Range-FFT** over the ADC samples of each chirp localizes reflectors
//!    in range (the IF beat frequency is proportional to range).
//! 2. **Doppler-FFT** over the chirps of a frame, per range bin, resolves
//!    radial velocity, producing the Range-Doppler Image (RDI).
//! 3. **MTI clutter removal** subtracts, per (antenna, range-bin), the mean
//!    over chirps — static reflections (walls, furniture, and a *perfectly
//!    still* trigger) cancel, while anything with Doppler content survives.
//! 4. **Angle-FFT** across the virtual antenna array resolves azimuth,
//!    producing the Dynamic Range-Angle Image (DRAI) after clutter removal.

use crate::fft::{fftshift, Fft};
use crate::heatmap::{Heatmap, HeatmapKind};
use crate::window::{self, WindowKind};
use crate::{Complex32, IfFrame};
use serde::{Deserialize, Serialize};

/// How the DRAI stage removes clutter (the paper's "remove clutters").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ClutterRemoval {
    /// No clutter removal: the DRAI shows everything, including walls.
    None,
    /// Moving-target indication: subtract the per-(antenna, range) mean
    /// over the chirps of each frame. Cancels *everything* static within a
    /// ~10 ms burst — including a reflector taped to a quasi-still torso,
    /// which survives only through breathing/sway micro-motion.
    Mti,
    /// Calibrated background subtraction: subtract the range profile of an
    /// empty-room reference capture. Cancels the environment exactly while
    /// keeping all returns from the user (and anything they wear) at full
    /// strength. This matches common DRAI practice and is the pipeline
    /// default.
    #[default]
    Background,
}

/// Configuration of the processing chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessingConfig {
    /// Range bins kept from the range FFT (the low-frequency half-spectrum;
    /// must be `<= n_adc / 2` for real scenes to avoid aliased bins).
    pub n_range_bins: usize,
    /// Angle-FFT size; the virtual-antenna snapshot is zero-padded up to
    /// this many bins. Must be a power of two.
    pub n_angle_bins: usize,
    /// Fast-time taper applied before the range FFT.
    pub range_window: WindowKind,
    /// Slow-time taper applied before the Doppler FFT.
    pub doppler_window: WindowKind,
    /// The DRAI clutter-removal stage. RDI generation never removes
    /// clutter so zero Doppler stays observable there.
    pub clutter_removal: ClutterRemoval,
}

impl Default for ProcessingConfig {
    fn default() -> Self {
        ProcessingConfig {
            n_range_bins: 16,
            n_angle_bins: 16,
            range_window: WindowKind::Hann,
            doppler_window: WindowKind::Hann,
            clutter_removal: ClutterRemoval::Background,
        }
    }
}

/// Range profiles for one frame: a `vrx x chirp x range-bin` cube of complex
/// values, the intermediate product between the range FFT and the Doppler /
/// angle stages.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeCube {
    n_vrx: usize,
    n_chirps: usize,
    n_range: usize,
    data: Vec<Complex32>,
}

impl RangeCube {
    fn zeros(n_vrx: usize, n_chirps: usize, n_range: usize) -> Self {
        RangeCube { n_vrx, n_chirps, n_range, data: vec![Complex32::ZERO; n_vrx * n_chirps * n_range] }
    }

    /// Number of virtual antennas.
    pub fn n_vrx(&self) -> usize {
        self.n_vrx
    }

    /// Number of chirps.
    pub fn n_chirps(&self) -> usize {
        self.n_chirps
    }

    /// Number of range bins.
    pub fn n_range(&self) -> usize {
        self.n_range
    }

    #[inline]
    fn idx(&self, vrx: usize, chirp: usize, range: usize) -> usize {
        debug_assert!(vrx < self.n_vrx && chirp < self.n_chirps && range < self.n_range);
        (vrx * self.n_chirps + chirp) * self.n_range + range
    }

    /// Complex value at `(vrx, chirp, range_bin)`.
    pub fn get(&self, vrx: usize, chirp: usize, range: usize) -> Complex32 {
        self.data[self.idx(vrx, chirp, range)]
    }

    fn get_mut(&mut self, vrx: usize, chirp: usize, range: usize) -> &mut Complex32 {
        let i = self.idx(vrx, chirp, range);
        &mut self.data[i]
    }

    /// Subtracts, for every (antenna, range-bin), the mean over chirps —
    /// moving-target indication. Static returns cancel exactly.
    pub fn remove_static_clutter(&mut self) {
        for vrx in 0..self.n_vrx {
            for range in 0..self.n_range {
                let mut mean = Complex32::ZERO;
                for chirp in 0..self.n_chirps {
                    mean += self.get(vrx, chirp, range);
                }
                mean = mean / self.n_chirps as f32;
                for chirp in 0..self.n_chirps {
                    *self.get_mut(vrx, chirp, range) -= mean;
                }
            }
        }
    }
}

/// A reusable processing pipeline with preplanned FFTs for fixed frame
/// dimensions.
///
/// # Examples
///
/// ```
/// use mmwave_dsp::processing::{Processor, ProcessingConfig};
/// use mmwave_dsp::IfFrame;
///
/// let cfg = ProcessingConfig::default();
/// let proc = Processor::new(8, 16, 64, cfg);
/// let frame = IfFrame::zeros(8, 16, 64);
/// let drai = proc.drai(&frame);
/// assert_eq!(drai.rows(), 16); // range bins
/// assert_eq!(drai.cols(), 16); // angle bins
/// ```
#[derive(Debug, Clone)]
pub struct Processor {
    n_vrx: usize,
    n_chirps: usize,
    n_adc: usize,
    config: ProcessingConfig,
    range_fft: Fft,
    doppler_fft: Fft,
    angle_fft: Fft,
    range_window: Vec<f32>,
    doppler_window: Vec<f32>,
}

impl Processor {
    /// Creates a pipeline for frames of shape `(n_vrx, n_chirps, n_adc)`.
    ///
    /// # Panics
    ///
    /// Panics if `n_adc` or `n_chirps` is not a power of two, if
    /// `config.n_angle_bins` is not a power of two or smaller than `n_vrx`,
    /// or if `config.n_range_bins > n_adc / 2`.
    pub fn new(n_vrx: usize, n_chirps: usize, n_adc: usize, config: ProcessingConfig) -> Self {
        assert!(n_adc.is_power_of_two(), "n_adc must be a power of two");
        assert!(n_chirps.is_power_of_two(), "n_chirps must be a power of two");
        assert!(
            config.n_angle_bins.is_power_of_two() && config.n_angle_bins >= n_vrx,
            "n_angle_bins must be a power of two >= n_vrx"
        );
        assert!(
            config.n_range_bins <= n_adc / 2,
            "n_range_bins must fit in the unaliased half spectrum"
        );
        Processor {
            n_vrx,
            n_chirps,
            n_adc,
            range_fft: Fft::new(n_adc),
            doppler_fft: Fft::new(n_chirps),
            angle_fft: Fft::new(config.n_angle_bins),
            range_window: config.range_window.coefficients(n_adc),
            doppler_window: config.doppler_window.coefficients(n_chirps),
            config,
        }
    }

    /// The configuration this pipeline was built with.
    pub fn config(&self) -> &ProcessingConfig {
        &self.config
    }

    /// Expected IF-frame shape `(n_vrx, n_chirps, n_adc)`.
    pub fn frame_shape(&self) -> (usize, usize, usize) {
        (self.n_vrx, self.n_chirps, self.n_adc)
    }

    /// Stage 1: range FFT of every chirp on every antenna.
    ///
    /// # Panics
    ///
    /// Panics if the frame shape does not match the plan.
    pub fn range_profiles(&self, frame: &IfFrame) -> RangeCube {
        assert_eq!(
            (frame.n_vrx(), frame.n_chirps(), frame.n_adc()),
            self.frame_shape(),
            "IF frame shape mismatch"
        );
        let _span = mmwave_telemetry::span("range_fft");
        let nr = self.config.n_range_bins;
        let mut cube = RangeCube::zeros(self.n_vrx, self.n_chirps, nr);
        let mut buf = vec![Complex32::ZERO; self.n_adc];
        for vrx in 0..self.n_vrx {
            for chirp in 0..self.n_chirps {
                buf.copy_from_slice(frame.chirp(vrx, chirp));
                window::apply(&mut buf, &self.range_window);
                self.range_fft.forward(&mut buf);
                for range in 0..nr {
                    *cube.get_mut(vrx, chirp, range) = buf[range];
                }
            }
        }
        cube
    }

    /// Stage 2a: Range-Doppler Image. Doppler FFT across chirps per range
    /// bin, incoherently summed over antennas. Rows = range, cols = Doppler
    /// (zero velocity at the center column after `fftshift`).
    pub fn rdi(&self, frame: &IfFrame) -> Heatmap {
        let _span = mmwave_telemetry::span("rdi");
        let cube = self.range_profiles(frame);
        let nr = cube.n_range();
        let mut out = Heatmap::zeros(nr, self.n_chirps, HeatmapKind::RangeDoppler);
        let mut slow = vec![Complex32::ZERO; self.n_chirps];
        for range in 0..nr {
            for vrx in 0..self.n_vrx {
                for chirp in 0..self.n_chirps {
                    slow[chirp] = cube.get(vrx, chirp, range);
                }
                window::apply(&mut slow, &self.doppler_window);
                self.doppler_fft.forward(&mut slow);
                let shifted = fftshift(&slow);
                for (d, z) in shifted.iter().enumerate() {
                    *out.get_mut(range, d) += z.abs_sq();
                }
            }
        }
        out
    }

    /// Stage 2b: Dynamic Range-Angle Image (the paper's DRAI) without a
    /// background reference: [`ClutterRemoval::Background`] falls back to
    /// MTI here. Use [`drai_with_background`](Self::drai_with_background)
    /// when a calibration capture is available (the capture pipeline always
    /// has one).
    pub fn drai(&self, frame: &IfFrame) -> Heatmap {
        let _span = mmwave_telemetry::span("drai");
        let mut cube = self.range_profiles(frame);
        match self.config.clutter_removal {
            ClutterRemoval::None => {}
            ClutterRemoval::Mti | ClutterRemoval::Background => cube.remove_static_clutter(),
        }
        self.drai_from_cube(&cube)
    }

    /// Converts a per-antenna background chirp (time-domain ADC samples of
    /// the empty room) into the range-profile reference that
    /// [`drai_with_background`](Self::drai_with_background) subtracts.
    ///
    /// # Panics
    ///
    /// Panics if the chirp count or length mismatches the plan.
    pub fn background_profile(&self, chirp_per_vrx: &[Vec<Complex32>]) -> Vec<Vec<Complex32>> {
        assert_eq!(chirp_per_vrx.len(), self.n_vrx, "background antenna count mismatch");
        let nr = self.config.n_range_bins;
        let mut buf = vec![Complex32::ZERO; self.n_adc];
        chirp_per_vrx
            .iter()
            .map(|chirp| {
                assert_eq!(chirp.len(), self.n_adc, "background chirp length mismatch");
                buf.copy_from_slice(chirp);
                window::apply(&mut buf, &self.range_window);
                self.range_fft.forward(&mut buf);
                buf[..nr].to_vec()
            })
            .collect()
    }

    /// DRAI with the configured clutter-removal stage, given a calibrated
    /// background range profile (from
    /// [`background_profile`](Self::background_profile)). Only consulted
    /// when the mode is [`ClutterRemoval::Background`].
    ///
    /// # Panics
    ///
    /// Panics if the background shape mismatches the plan.
    pub fn drai_with_background(
        &self,
        frame: &IfFrame,
        background: &[Vec<Complex32>],
    ) -> Heatmap {
        let _span = mmwave_telemetry::span("drai");
        let mut cube = self.range_profiles(frame);
        match self.config.clutter_removal {
            ClutterRemoval::None => {}
            ClutterRemoval::Mti => cube.remove_static_clutter(),
            ClutterRemoval::Background => {
                assert_eq!(background.len(), self.n_vrx, "background antenna count mismatch");
                let nr = cube.n_range();
                for (vrx, bg) in background.iter().enumerate() {
                    assert_eq!(bg.len(), nr, "background range-bin count mismatch");
                    for chirp in 0..self.n_chirps {
                        for (range, &b) in bg.iter().enumerate() {
                            *cube.get_mut(vrx, chirp, range) -= b;
                        }
                    }
                }
            }
        }
        self.drai_from_cube(&cube)
    }

    /// Batched [`rdi`](Self::rdi) over many frames, fanned out on the
    /// `mmwave-exec` pool. Each frame runs the exact serial chain and the
    /// output order matches the input order, so the result is
    /// byte-identical to mapping [`rdi`](Self::rdi) over `frames` — for
    /// any worker count.
    pub fn rdi_batch(&self, frames: &[IfFrame]) -> Vec<Heatmap> {
        mmwave_exec::par_map(frames, |_, frame| self.rdi(frame))
    }

    /// Batched [`drai`](Self::drai); see [`rdi_batch`](Self::rdi_batch)
    /// for the determinism contract.
    pub fn drai_batch(&self, frames: &[IfFrame]) -> Vec<Heatmap> {
        mmwave_exec::par_map(frames, |_, frame| self.drai(frame))
    }

    /// Batched [`drai_with_background`](Self::drai_with_background); see
    /// [`rdi_batch`](Self::rdi_batch) for the determinism contract.
    pub fn drai_with_background_batch(
        &self,
        frames: &[IfFrame],
        background: &[Vec<Complex32>],
    ) -> Vec<Heatmap> {
        mmwave_exec::par_map(frames, |_, frame| self.drai_with_background(frame, background))
    }

    /// DRAI from an already-computed (and possibly clutter-removed) cube.
    pub fn drai_from_cube(&self, cube: &RangeCube) -> Heatmap {
        let _span = mmwave_telemetry::span("angle_fft");
        let nr = cube.n_range();
        let na = self.config.n_angle_bins;
        let mut out = Heatmap::zeros(nr, na, HeatmapKind::RangeAngle);
        let mut snapshot = vec![Complex32::ZERO; self.n_vrx];
        for chirp in 0..self.n_chirps {
            for range in 0..nr {
                for vrx in 0..self.n_vrx {
                    snapshot[vrx] = cube.get(vrx, chirp, range);
                }
                let spectrum = self.angle_fft.forward_padded(&snapshot);
                let shifted = fftshift(&spectrum);
                for (a, z) in shifted.iter().enumerate() {
                    *out.get_mut(range, a) += z.abs_sq();
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N_VRX: usize = 8;
    const N_CHIRPS: usize = 16;
    const N_ADC: usize = 64;

    fn processor() -> Processor {
        Processor::new(N_VRX, N_CHIRPS, N_ADC, ProcessingConfig::default())
    }

    /// Synthesizes the IF of a point target: beat-frequency bin `range_bin`,
    /// per-chirp Doppler phase step `doppler_phase`, per-antenna angle phase
    /// step `angle_phase`.
    fn point_target_frame(range_bin: f32, doppler_phase: f32, angle_phase: f32) -> IfFrame {
        let mut frame = IfFrame::zeros(N_VRX, N_CHIRPS, N_ADC);
        for vrx in 0..N_VRX {
            for chirp in 0..N_CHIRPS {
                let base = doppler_phase * chirp as f32 + angle_phase * vrx as f32;
                let data = frame.chirp_mut(vrx, chirp);
                for (n, z) in data.iter_mut().enumerate() {
                    let theta =
                        2.0 * std::f32::consts::PI * range_bin * n as f32 / N_ADC as f32 + base;
                    *z = Complex32::cis(theta);
                }
            }
        }
        frame
    }

    #[test]
    fn static_target_lands_in_correct_range_bin_of_rdi() {
        let frame = point_target_frame(5.0, 0.0, 0.0);
        let rdi = processor().rdi(&frame);
        let (range, doppler, _) = rdi.peak().unwrap();
        assert_eq!(range, 5);
        // Zero Doppler is the center column after fftshift.
        assert_eq!(doppler, N_CHIRPS / 2);
    }

    #[test]
    fn moving_target_shifts_doppler_column() {
        let frame = point_target_frame(5.0, 0.8, 0.0);
        let rdi = processor().rdi(&frame);
        let (_, doppler, _) = rdi.peak().unwrap();
        assert_ne!(doppler, N_CHIRPS / 2, "moving target must leave the zero-Doppler column");
    }

    #[test]
    fn mti_cancels_static_but_keeps_moving() {
        let static_frame = point_target_frame(4.0, 0.0, 0.0);
        let moving_frame = point_target_frame(9.0, 0.9, 0.0);
        let combined = static_frame.superposed(&moving_frame);
        let p = processor();
        let drai = p.drai(&combined);
        // Energy at range 9 (moving) must dominate range 4 (static).
        let static_row: f32 = (0..drai.cols()).map(|c| drai.get(4, c)).sum();
        let moving_row: f32 = (0..drai.cols()).map(|c| drai.get(9, c)).sum();
        assert!(
            moving_row > 100.0 * static_row.max(1e-9),
            "MTI failed: static {static_row}, moving {moving_row}"
        );
    }

    #[test]
    fn clutter_removal_can_be_disabled() {
        let cfg = ProcessingConfig {
            clutter_removal: ClutterRemoval::None,
            ..ProcessingConfig::default()
        };
        let p = Processor::new(N_VRX, N_CHIRPS, N_ADC, cfg);
        let static_frame = point_target_frame(4.0, 0.0, 0.0);
        let drai = p.drai(&static_frame);
        let (range, _, _) = drai.peak().unwrap();
        assert_eq!(range, 4, "without MTI the static target should appear");
    }

    #[test]
    fn angle_phase_moves_peak_away_from_boresight() {
        let p = processor();
        let boresight = p.drai(&point_target_frame(5.0, 0.7, 0.0));
        let angled = p.drai(&point_target_frame(5.0, 0.7, 1.2));
        let (_, col_bore, _) = boresight.peak().unwrap();
        let (_, col_angled, _) = angled.peak().unwrap();
        assert_eq!(col_bore, p.config().n_angle_bins / 2);
        assert_ne!(col_angled, col_bore);
    }

    #[test]
    fn opposite_angles_land_on_opposite_sides() {
        let p = processor();
        let left = p.drai(&point_target_frame(5.0, 0.7, -1.0));
        let right = p.drai(&point_target_frame(5.0, 0.7, 1.0));
        let center = p.config().n_angle_bins / 2;
        let (_, cl, _) = left.peak().unwrap();
        let (_, cr, _) = right.peak().unwrap();
        assert!(
            (cl < center) != (cr < center),
            "symmetric phases should fall on opposite sides: {cl} vs {cr}"
        );
    }

    #[test]
    fn superposition_passes_through_pipeline() {
        // DRAI(a + b) has peaks where DRAI(a) and DRAI(b) have them.
        let a = point_target_frame(3.0, 0.9, 0.5);
        let b = point_target_frame(11.0, -0.8, -0.9);
        let p = processor();
        let combined = p.drai(&a.superposed(&b));
        let pa = p.drai(&a).peak().unwrap();
        let pb = p.drai(&b).peak().unwrap();
        assert!(combined.get(pa.0, pa.1) > 0.1 * pa.2);
        assert!(combined.get(pb.0, pb.1) > 0.1 * pb.2);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_frame_shape_panics() {
        processor().rdi(&IfFrame::zeros(2, N_CHIRPS, N_ADC));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_adc_count_panics() {
        Processor::new(4, 16, 48, ProcessingConfig::default());
    }

    #[test]
    fn batched_stages_match_serial_bitwise_for_any_worker_count() {
        let p = processor();
        let frames: Vec<IfFrame> = (0..6)
            .map(|i| point_target_frame(3.0 + i as f32, 0.1 * i as f32, 0.2 * i as f32))
            .collect();
        let serial_rdi: Vec<Heatmap> = frames.iter().map(|f| p.rdi(f)).collect();
        let serial_drai: Vec<Heatmap> = frames.iter().map(|f| p.drai(f)).collect();
        for workers in [1, 4] {
            let (rdi, drai) = mmwave_exec::with_workers(workers, || {
                (p.rdi_batch(&frames), p.drai_batch(&frames))
            });
            assert_eq!(rdi, serial_rdi, "rdi_batch diverged at workers={workers}");
            assert_eq!(drai, serial_drai, "drai_batch diverged at workers={workers}");
        }
    }

    #[test]
    fn zero_frame_produces_zero_heatmaps() {
        let p = processor();
        let z = IfFrame::zeros(N_VRX, N_CHIRPS, N_ADC);
        assert_eq!(p.rdi(&z).total(), 0.0);
        assert_eq!(p.drai(&z).total(), 0.0);
    }
}
