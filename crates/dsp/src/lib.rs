//! Radar signal processing for mmWave FMCW human activity recognition.
//!
//! This crate turns raw intermediate-frequency (IF) samples produced by the
//! simulator in `mmwave-radar` into the time-series heatmaps the HAR
//! prototype classifies, following the pipeline of Section II-A of the
//! paper:
//!
//! ```text
//! IF samples --Range-FFT--> range profiles --Doppler-FFT--> RDI
//!                               |
//!                               +--MTI clutter removal--Angle-FFT--> DRAI
//! ```
//!
//! * [`Complex32`] — single-precision complex arithmetic;
//! * [`fft`] — an in-place iterative radix-2 FFT with precomputed twiddle
//!   factors (plus a naive DFT used to validate it in tests);
//! * [`window`] — Hann/Hamming/Blackman/rectangular tapers;
//! * [`frame`] — the [`frame::IfFrame`] raw-signal container
//!   (virtual-antenna x chirp x ADC-sample cube);
//! * [`processing`] — Range/Doppler/Angle FFT stages and moving-target
//!   indication (MTI) clutter removal;
//! * [`heatmap`] — [`heatmap::Heatmap`] (a single range-Doppler or
//!   range-angle image) and [`heatmap::HeatmapSeq`] (the 32-frame sequence
//!   representing one activity).
//!
//! # Examples
//!
//! ```
//! use mmwave_dsp::{fft::Fft, Complex32};
//!
//! // Round-trip a small signal through the FFT.
//! let plan = Fft::new(8);
//! let mut data: Vec<Complex32> =
//!     (0..8).map(|i| Complex32::new(i as f32, 0.0)).collect();
//! let original = data.clone();
//! plan.forward(&mut data);
//! plan.inverse(&mut data);
//! for (a, b) in data.iter().zip(&original) {
//!     assert!((*a - *b).abs() < 1e-4);
//! }
//! ```

pub mod cfar;
pub mod complex;
pub mod fft;
pub mod frame;
pub mod heatmap;
pub mod processing;
pub mod spectrogram;
pub mod window;

pub use complex::Complex32;
pub use frame::IfFrame;
pub use heatmap::{repair_dropped_frames, Heatmap, HeatmapSeq};
