//! Taper windows applied before FFT stages to control spectral leakage.

use serde::{Deserialize, Serialize};

/// Window function families used by the range and Doppler FFTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WindowKind {
    /// No taper (boxcar). Maximum resolution, worst sidelobes.
    Rectangular,
    /// Hann window — the pipeline default, matching common TI reference
    /// processing chains.
    #[default]
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window — lowest sidelobes, widest mainlobe.
    Blackman,
}

impl WindowKind {
    /// Evaluates the window at sample `i` of `n`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= n`.
    pub fn coefficient(self, i: usize, n: usize) -> f32 {
        debug_assert!(i < n);
        if n == 1 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64;
        let v = match self {
            WindowKind::Rectangular => 1.0,
            WindowKind::Hann => 0.5 - 0.5 * (std::f64::consts::TAU * x).cos(),
            WindowKind::Hamming => 0.54 - 0.46 * (std::f64::consts::TAU * x).cos(),
            WindowKind::Blackman => {
                0.42 - 0.5 * (std::f64::consts::TAU * x).cos()
                    + 0.08 * (2.0 * std::f64::consts::TAU * x).cos()
            }
        };
        v as f32
    }

    /// Generates the full window of length `n`.
    pub fn coefficients(self, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.coefficient(i, n)).collect()
    }
}

/// Multiplies a complex buffer by a precomputed window, in place.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn apply(data: &mut [crate::Complex32], window: &[f32]) {
    assert_eq!(data.len(), window.len(), "window length mismatch");
    for (z, &w) in data.iter_mut().zip(window) {
        *z = z.scale(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex32;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(WindowKind::Rectangular
            .coefficients(16)
            .iter()
            .all(|&w| w == 1.0));
    }

    #[test]
    fn hann_endpoints_are_zero_and_center_is_one() {
        let w = WindowKind::Hann.coefficients(33);
        assert!(w[0].abs() < 1e-6);
        assert!(w[32].abs() < 1e-6);
        assert!((w[16] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn windows_are_symmetric() {
        for kind in [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
        ] {
            let w = kind.coefficients(64);
            for i in 0..32 {
                assert!((w[i] - w[63 - i]).abs() < 1e-6, "{kind:?} asymmetric at {i}");
            }
        }
    }

    #[test]
    fn hamming_floor_is_008() {
        let w = WindowKind::Hamming.coefficients(65);
        assert!((w[0] - 0.08).abs() < 1e-4);
    }

    #[test]
    fn length_one_window_is_unity() {
        for kind in [WindowKind::Hann, WindowKind::Blackman] {
            assert_eq!(kind.coefficients(1), vec![1.0]);
        }
    }

    #[test]
    fn apply_scales_samples() {
        let mut data = vec![Complex32::ONE; 4];
        let w = [0.0, 0.5, 1.0, 2.0];
        apply(&mut data, &w);
        assert_eq!(data[0], Complex32::ZERO);
        assert_eq!(data[1], Complex32::new(0.5, 0.0));
        assert_eq!(data[3], Complex32::new(2.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "window length mismatch")]
    fn apply_length_mismatch_panics() {
        apply(&mut [Complex32::ONE; 3], &[1.0; 4]);
    }
}
