//! Single-precision complex numbers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f32` components.
///
/// IF signals, FFT spectra, and heatmap intermediates all use this type;
/// geometry and phase *computation* stay in `f64` (see `mmwave-radar`) and
/// are converted at the signal boundary.
///
/// # Examples
///
/// ```
/// use mmwave_dsp::Complex32;
/// let i = Complex32::I;
/// assert_eq!(i * i, Complex32::new(-1.0, 0.0));
/// let z = Complex32::from_polar(2.0, std::f32::consts::FRAC_PI_2);
/// assert!((z - Complex32::new(0.0, 2.0)).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex32 {
    /// Zero.
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex32 = Complex32 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex32 = Complex32 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Complex32 { re, im }
    }

    /// Creates a complex number from polar form `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f32, theta: f32) -> Self {
        let (s, c) = theta.sin_cos();
        Complex32 { re: r * c, im: r * s }
    }

    /// Unit phasor `e^{i theta}`.
    #[inline]
    pub fn cis(theta: f32) -> Self {
        Complex32::from_polar(1.0, theta)
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f32 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude (cheaper than [`abs`](Self::abs)).
    #[inline]
    pub fn abs_sq(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians.
    #[inline]
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex32 {
        Complex32 { re: self.re, im: -self.im }
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f32) -> Complex32 {
        Complex32 { re: self.re * s, im: self.im * s }
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    #[inline]
    fn add(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex32 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    #[inline]
    fn sub(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex32) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Complex32) -> Complex32 {
        Complex32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex32) {
        *self = *self * rhs;
    }
}

impl Mul<f32> for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: f32) -> Complex32 {
        self.scale(rhs)
    }
}

impl Div<f32> for Complex32 {
    type Output = Complex32;
    #[inline]
    fn div(self, rhs: f32) -> Complex32 {
        self.scale(1.0 / rhs)
    }
}

impl Div for Complex32 {
    type Output = Complex32;
    #[inline]
    fn div(self, rhs: Complex32) -> Complex32 {
        let d = rhs.abs_sq();
        Complex32::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex32 {
    type Output = Complex32;
    #[inline]
    fn neg(self) -> Complex32 {
        Complex32::new(-self.re, -self.im)
    }
}

impl Sum for Complex32 {
    fn sum<I: Iterator<Item = Complex32>>(iter: I) -> Complex32 {
        iter.fold(Complex32::ZERO, |acc, z| acc + z)
    }
}

impl From<f32> for Complex32 {
    #[inline]
    fn from(re: f32) -> Self {
        Complex32::new(re, 0.0)
    }
}

impl fmt::Display for Complex32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex32, b: Complex32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex32::new(1.0, 2.0);
        let b = Complex32::new(-0.5, 3.0);
        let c = Complex32::new(2.0, -1.0);
        assert!(close(a + b, b + a));
        assert!(close(a * b, b * a));
        assert!(close(a * (b + c), a * b + a * c));
        assert!(close(a + Complex32::ZERO, a));
        assert!(close(a * Complex32::ONE, a));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex32::I * Complex32::I, -Complex32::ONE));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex32::new(3.0, -2.0);
        let b = Complex32::new(0.5, 1.5);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex32::from_polar(2.5, 0.7);
        assert!((z.abs() - 2.5).abs() < 1e-6);
        assert!((z.arg() - 0.7).abs() < 1e-6);
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex32::new(1.0, -4.0);
        assert!(close(z.conj().conj(), z));
        assert!((z * z.conj()).im.abs() < 1e-6);
        assert!(((z * z.conj()).re - z.abs_sq()).abs() < 1e-4);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f32 * 0.3927;
            assert!((Complex32::cis(theta).abs() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sum_accumulates() {
        let total: Complex32 = (0..4).map(|k| Complex32::new(k as f32, 1.0)).sum();
        assert!(close(total, Complex32::new(6.0, 4.0)));
    }

    #[test]
    fn display_has_sign() {
        assert_eq!(format!("{}", Complex32::new(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{}", Complex32::new(1.0, 2.0)), "1+2i");
    }
}
