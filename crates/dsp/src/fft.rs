//! In-place iterative radix-2 FFT with precomputed twiddle factors.
//!
//! All FFT sizes in the radar pipeline (ADC samples per chirp, chirps per
//! frame, angle bins) are powers of two, so a radix-2 kernel suffices. The
//! plan precomputes bit-reversal indices and twiddles once; per-transform
//! cost is `O(n log n)` with no allocation.

use crate::Complex32;

/// A reusable FFT plan for a fixed power-of-two size.
///
/// # Examples
///
/// ```
/// use mmwave_dsp::{fft::Fft, Complex32};
/// let plan = Fft::new(16);
/// let mut impulse = vec![Complex32::ZERO; 16];
/// impulse[0] = Complex32::ONE;
/// plan.forward(&mut impulse);
/// // The spectrum of an impulse is flat.
/// for bin in &impulse {
///     assert!((bin.abs() - 1.0).abs() < 1e-5);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    // Twiddles for the forward transform: e^{-2 pi i k / n} for k < n/2.
    twiddles: Vec<Complex32>,
    bitrev: Vec<u32>,
}

impl Fft {
    /// Creates a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n.is_power_of_two(), "FFT size must be a power of two, got {n}");
        let twiddles = (0..n / 2)
            .map(|k| {
                let theta = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
                Complex32::new(theta.cos() as f32, theta.sin() as f32)
            })
            .collect();
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .map(|i| if n == 1 { 0 } else { i })
            .collect();
        Fft { n, twiddles, bitrev }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the plan length is 1 (the identity transform).
    pub fn is_empty(&self) -> bool {
        self.n == 1
    }

    /// Forward DFT, in place: `X[k] = sum_j x[j] e^{-2 pi i jk / n}`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan size.
    pub fn forward(&self, data: &mut [Complex32]) {
        assert_eq!(data.len(), self.n, "buffer length must match plan size");
        self.transform(data, false);
    }

    /// Inverse DFT, in place, normalized by `1/n` so that
    /// `inverse(forward(x)) == x`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan size.
    pub fn inverse(&self, data: &mut [Complex32]) {
        assert_eq!(data.len(), self.n, "buffer length must match plan size");
        self.transform(data, true);
        let scale = 1.0 / self.n as f32;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
    }

    fn transform(&self, data: &mut [Complex32], inverse: bool) {
        let n = self.n;
        if n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterflies.
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let tw = self.twiddles[k * step];
                    let tw = if inverse { tw.conj() } else { tw };
                    let a = data[start + k];
                    let b = data[start + k + half] * tw;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len *= 2;
        }
    }

    /// Forward DFT with zero padding: transforms `input` (length `<= n`)
    /// into a freshly allocated spectrum of length `n`.
    ///
    /// Zero padding is how the angle-FFT interpolates 8 virtual antennas
    /// into (say) 16 angle bins.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() > n`.
    pub fn forward_padded(&self, input: &[Complex32]) -> Vec<Complex32> {
        assert!(input.len() <= self.n, "input longer than FFT size");
        let mut buf = vec![Complex32::ZERO; self.n];
        buf[..input.len()].copy_from_slice(input);
        self.forward(&mut buf);
        buf
    }
}

/// Naive `O(n^2)` DFT used as the reference implementation in tests.
pub fn dft_naive(input: &[Complex32]) -> Vec<Complex32> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex32::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let theta = -2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
                acc += x * Complex32::new(theta.cos() as f32, theta.sin() as f32);
            }
            acc
        })
        .collect()
}

/// Reorders a spectrum so that the zero-frequency bin sits at the center
/// (`fftshift`), as expected when rendering Doppler or angle axes.
pub fn fftshift<T: Copy>(spectrum: &[T]) -> Vec<T> {
    let n = spectrum.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&spectrum[half..]);
    out.extend_from_slice(&spectrum[..half]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_spectra_close(a: &[Complex32], b: &[Complex32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x} != {y}");
        }
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let input: Vec<Complex32> = (0..n)
                .map(|i| Complex32::new((i as f32 * 0.7).sin(), (i as f32 * 1.3).cos()))
                .collect();
            let mut fast = input.clone();
            Fft::new(n).forward(&mut fast);
            let slow = dft_naive(&input);
            assert_spectra_close(&fast, &slow, 1e-3 * n as f32);
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let n = 64;
        let plan = Fft::new(n);
        let input: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32).sin(), (i as f32 * 0.31).cos()))
            .collect();
        let mut buf = input.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        assert_spectra_close(&buf, &input, 1e-4);
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let input: Vec<Complex32> = (0..n)
            .map(|j| {
                Complex32::cis(2.0 * std::f32::consts::PI * (k0 * j) as f32 / n as f32)
            })
            .collect();
        let mut buf = input;
        Fft::new(n).forward(&mut buf);
        let peak = buf
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .unwrap()
            .0;
        assert_eq!(peak, k0);
        assert!((buf[k0].abs() - n as f32).abs() < 1e-2);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let plan = Fft::new(n);
        let a: Vec<Complex32> = (0..n).map(|i| Complex32::new(i as f32, 0.5)).collect();
        let b: Vec<Complex32> = (0..n).map(|i| Complex32::new(1.0, -(i as f32))).collect();
        let sum: Vec<Complex32> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let (mut fa, mut fb, mut fs) = (a, b, sum);
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        plan.forward(&mut fs);
        let combined: Vec<Complex32> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert_spectra_close(&fs, &combined, 1e-2);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let input: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32 * 0.11).sin(), (i as f32 * 0.07).cos()))
            .collect();
        let time_energy: f32 = input.iter().map(|z| z.abs_sq()).sum();
        let mut buf = input;
        Fft::new(n).forward(&mut buf);
        let freq_energy: f32 = buf.iter().map(|z| z.abs_sq()).sum::<f32>() / n as f32;
        assert!((time_energy - freq_energy).abs() < 1e-2 * time_energy);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        Fft::new(12);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_buffer_length_panics() {
        Fft::new(8).forward(&mut [Complex32::ZERO; 4]);
    }

    #[test]
    fn padded_transform_zero_extends() {
        let plan = Fft::new(16);
        let short = [Complex32::ONE; 4];
        let padded = plan.forward_padded(&short);
        assert_eq!(padded.len(), 16);
        // DC bin equals the coherent sum of the inputs.
        assert!((padded[0].abs() - 4.0).abs() < 1e-4);
    }

    #[test]
    fn fftshift_centers_dc() {
        let spectrum = [0, 1, 2, 3, 4, 5, 6, 7];
        let shifted = fftshift(&spectrum);
        assert_eq!(shifted, vec![4, 5, 6, 7, 0, 1, 2, 3]);
        // Odd length.
        let odd = [0, 1, 2, 3, 4];
        assert_eq!(fftshift(&odd), vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn size_one_is_identity() {
        let plan = Fft::new(1);
        let mut data = [Complex32::new(3.0, 4.0)];
        plan.forward(&mut data);
        assert_eq!(data[0], Complex32::new(3.0, 4.0));
        plan.inverse(&mut data);
        assert_eq!(data[0], Complex32::new(3.0, 4.0));
    }
}
