//! Property-based tests for the signal-processing substrate.

use mmwave_dsp::fft::{dft_naive, fftshift, Fft};
use mmwave_dsp::heatmap::{Heatmap, HeatmapKind};
use mmwave_dsp::window::WindowKind;
use mmwave_dsp::{Complex32, IfFrame};
use proptest::prelude::*;

fn arb_signal(len: usize) -> impl Strategy<Value = Vec<Complex32>> {
    proptest::collection::vec(
        (-10.0f32..10.0, -10.0f32..10.0).prop_map(|(re, im)| Complex32::new(re, im)),
        len,
    )
}

proptest! {
    #[test]
    fn fft_roundtrip_any_signal(signal in arb_signal(32)) {
        let plan = Fft::new(32);
        let mut buf = signal.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&signal) {
            prop_assert!((*a - *b).abs() < 1e-3);
        }
    }

    #[test]
    fn fft_matches_naive_on_random_input(signal in arb_signal(16)) {
        let mut fast = signal.clone();
        Fft::new(16).forward(&mut fast);
        let slow = dft_naive(&signal);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-2);
        }
    }

    #[test]
    fn parseval_holds(signal in arb_signal(64)) {
        let time: f64 = signal.iter().map(|z| z.abs_sq() as f64).sum();
        let mut buf = signal;
        Fft::new(64).forward(&mut buf);
        let freq: f64 = buf.iter().map(|z| z.abs_sq() as f64).sum::<f64>() / 64.0;
        prop_assert!((time - freq).abs() <= 1e-3 * time.max(1.0));
    }

    #[test]
    fn fftshift_is_involution_for_even_lengths(v in proptest::collection::vec(-100i32..100, 64)) {
        let double = fftshift(&fftshift(&v));
        prop_assert_eq!(double, v);
    }

    #[test]
    fn window_coefficients_bounded(n in 2usize..256) {
        for kind in [WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            for w in kind.coefficients(n) {
                prop_assert!((-0.01..=1.01).contains(&w), "{kind:?} out of range: {w}");
            }
        }
    }

    #[test]
    fn if_superposition_commutes(a in arb_signal(8), b in arb_signal(8)) {
        let mut fa = IfFrame::zeros(1, 1, 8);
        let mut fb = IfFrame::zeros(1, 1, 8);
        fa.chirp_mut(0, 0).copy_from_slice(&a);
        fb.chirp_mut(0, 0).copy_from_slice(&b);
        let ab = fa.superposed(&fb);
        let ba = fb.superposed(&fa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn heatmap_l2_triangle_inequality(
        a in proptest::collection::vec(0.0f32..10.0, 16),
        b in proptest::collection::vec(0.0f32..10.0, 16),
        c in proptest::collection::vec(0.0f32..10.0, 16),
    ) {
        let ha = Heatmap::from_data(4, 4, HeatmapKind::RangeAngle, a);
        let hb = Heatmap::from_data(4, 4, HeatmapKind::RangeAngle, b);
        let hc = Heatmap::from_data(4, 4, HeatmapKind::RangeAngle, c);
        prop_assert!(ha.l2_distance(&hc) <= ha.l2_distance(&hb) + hb.l2_distance(&hc) + 1e-4);
    }

    #[test]
    fn normalize_global_caps_at_one(values in proptest::collection::vec(0.0f32..1e6, 16)) {
        let frame = Heatmap::from_data(4, 4, HeatmapKind::RangeAngle, values);
        let mut seq = mmwave_dsp::HeatmapSeq::new(vec![frame]);
        seq.normalize_global();
        for &v in seq.frame(0).as_slice() {
            prop_assert!(v <= 1.0 + 1e-6);
        }
    }
}
